#include "route/route.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "arch/lookahead.hpp"
#include "route/overuse.hpp"
#include "util/thread_pool.hpp"
#include "verify/check.hpp"

namespace nemfpga {
namespace {

double wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Allocation-free PathFinder search core with an A* geometric lookahead
// (src/arch/lookahead.hpp) and deterministic net-level parallelism.
//
// All mutable search state is split in two:
//  - Router owns everything shared across nets: the occupancy tracker and
//    its HotNode mirror, history costs, the per-iteration cost cache and
//    the lookahead table. During a parallel batch this state is
//    *read-only*; occupancy changes are applied serially at commit time.
//  - Scratch owns everything one in-flight net needs: the relaxation
//    array, the heap, tree/path buffers. Worker threads check scratch
//    arenas out of a free list, so the steady-state net loop performs
//    zero heap allocations regardless of the thread count
//    (RouteCounters::scratch_grows counts per-arena warm-up growth).
//
// With net_parallel=false and astar_factor=0 the router is bit-identical
// to the straightforward serial implementation it replaces: same heap
// algorithm and comparator, same relaxation epsilons, same tie-breaking
// jitter, same occupancy sequencing — the legacy golden fixtures in
// tests/test_route_golden.cpp pin Wmin and whole-suite tree checksums.
struct Router {
  const RrGraphView g;  ///< Backend-dispatch view (two pointers, by value).
  const Placement& pl;
  const RouteOptions& opt;

  OveruseTracker occ;
  std::vector<float> history;
  double pres_fac;

  /// route_base_cost per node (immutable for a given graph).
  std::vector<double> base_cost;

  /// Admissible A* lookahead (null when astar_factor == 0). Either the
  /// caller-provided shared table (RouteOptions::lookahead) or one built
  /// here on demand.
  std::shared_ptr<const RouteLookahead> la;

  /// Timing-driven state (all null/zero in congestion-only mode, which
  /// keeps every hot-loop expression bit-identical to the legacy path).
  RouterTimingHook* const timing;    ///< Non-null iff timing-driven.
  const double* node_delay = nullptr;  ///< Per-node entering delay [s].
  double spb = 0.0;                  ///< Seconds per unit base cost.
  /// Delay half of the lookahead (null when the shared table was built
  /// without a profile — the heuristic then degrades to the congestion
  /// half alone, which is still admissible, just less directed).
  const float* delay_tab = nullptr;

  /// Everything the relaxation loop reads about a candidate node, packed
  /// into one 32-byte record so an edge costs one data-cache touch
  /// instead of six scattered array loads: the bounding-box coords and
  /// sink flag (immutable), a mirror of the occupancy/capacity pair
  /// (updated through inc_occ/dec_occ), the folded lookahead index, and
  /// the per-iteration cost cache base * (1 + history) * jitter — leaving
  /// one multiply for the present-congestion factor instead of a type
  /// switch + hash + three multiplies per edge.
  struct HotNode {
    std::uint16_t x_lo, x_hi, y_lo, y_hi;
    std::uint16_t occ, cap;
    std::uint16_t is_sink;
    std::uint16_t pad = 0;
    std::int32_t la_key;  ///< RouteLookahead::node_key (0 without table).
    std::uint32_t pad2 = 0;
    double cost;
  };
  static_assert(sizeof(HotNode) == 32);
  std::vector<HotNode> hot;

  // Per-sink-search relaxation state, epoch-stamped to avoid O(V) clears
  // and packed per node for the same one-touch reason as HotNode. The
  // ov_* fields are a second, independently-stamped channel: the
  // occupancy *overlay* — increments the net being routed has already
  // claimed for its own tree (earlier sinks), which are deliberately not
  // applied to the shared HotNode mirror until the net commits. ov_epoch
  // is keyed by Scratch::ov_cur (one epoch per route attempt), so the
  // overlay survives the per-sink cur_epoch bumps. Relaxation updates
  // must therefore write path_cost/epoch/prev field-wise, never by
  // aggregate assignment, or they would wipe the overlay.
  struct RelaxNode {
    double path_cost;
    std::uint32_t epoch;
    RrNodeId prev;
    std::uint32_t ov_epoch;
    std::uint16_t ov_add;
    std::uint16_t pad = 0;
  };
  static_assert(sizeof(RelaxNode) == 24);

  struct QItem {
    double cost;
    double known;
    RrNodeId node;
    bool operator>(const QItem& o) const { return cost > o.cost; }
  };

  /// Per-in-flight-net search state. One arena per concurrently-routing
  /// net; serial runs use a single arena for the whole routing.
  struct Scratch {
    std::vector<RelaxNode> relax;
    std::uint32_t cur_epoch = 0;  ///< One per sink search.
    std::uint32_t ov_cur = 0;     ///< One per route attempt (overlay).

    // Per-net membership marks (tree membership dedup).
    std::vector<std::uint32_t> mark;
    std::uint32_t mark_cur = 0;

    // Reusable per-net buffers.
    std::vector<QItem> heap;
    std::vector<RrNodeId> sink_nodes;
    std::vector<double> sink_keys;
    std::vector<double> sink_crit;  ///< Timing mode only.
    std::vector<std::uint32_t> order;
    std::vector<RrNodeId> tree_nodes;
    /// Timing mode only: delay from the net source to each current tree
    /// node (indexed by RR node; valid for marked tree nodes). Allocated
    /// lazily on the first timing-driven net so congestion-only scratch
    /// footprints are untouched.
    std::vector<double> node_tdel;
    std::vector<std::pair<RrNodeId, RrNodeId>> path;
    /// Edge materialization buffer for the implicit RR backend
    /// (RrGraphView::edges); untouched by the explicit backend. Reserved
    /// past the worst-case out-degree so it never grows in the loop.
    std::vector<RrEdge> edge_buf;

    /// Set by a successful route attempt: edges before this index are the
    /// pre-seeded (still-committed) part of the tree, edges from it on
    /// are new and need their occupancy committed.
    std::size_t seed_edges = 0;

    /// Work done through this arena; summed into the routing totals.
    RouteCounters cnt;

    Scratch(std::size_t n, std::size_t edge_reserve) {
      relax.assign(n, RelaxNode{0.0, 0, kNoRrNode, 0, 0, 0});
      mark.assign(n, 0);
      // Warm the arena so even the first nets rarely grow it.
      heap.reserve(4096);
      sink_nodes.reserve(256);
      sink_keys.reserve(256);
      sink_crit.reserve(256);
      order.reserve(256);
      tree_nodes.reserve(1024);
      path.reserve(512);
      edge_buf.reserve(edge_reserve);
    }

    std::size_t capacity() const {
      return heap.capacity() + sink_nodes.capacity() + sink_keys.capacity() +
             sink_crit.capacity() + order.capacity() + tree_nodes.capacity() +
             node_tdel.capacity() + path.capacity();
    }

    // Binary min-heap over the persistent buffer — the exact algorithm
    // std::priority_queue runs, without its per-search container churn.
    // (A 4-ary hole-sifting variant was measured here; it resolves
    // exact-cost ties in a different order than std::pop_heap, which
    // perturbs the routing and violates the bit-identity contract the
    // golden tests pin, so the std algorithms stay.)
    void heap_push(QItem item) {
      heap.push_back(item);
      std::push_heap(heap.begin(), heap.end(), std::greater<>{});
      ++cnt.heap_pushes;
    }
    QItem heap_pop() {
      std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
      const QItem item = heap.back();
      heap.pop_back();
      ++cnt.heap_pops;
      return item;
    }
  };

  // Scratch arenas are checked out per in-flight net. Lazily grown so a
  // serial run (and the nested-serial Wmin probes) allocates exactly one.
  std::vector<std::unique_ptr<Scratch>> scratches;
  std::vector<Scratch*> free_scratches;
  std::mutex scratch_mu;

  // Serial-only marks/buffers (rip-up dedup, prune, batch conflict marks,
  // wire census) — never touched from worker threads.
  std::vector<std::uint32_t> smark;
  std::uint32_t smark_cur = 0;
  std::vector<std::uint32_t> bmark;
  std::uint32_t bmark_cur = 0;
  std::vector<std::pair<RrNodeId, RrNodeId>> kept;
  std::vector<std::pair<RrNodeId, RrNodeId>> ppath;

  std::size_t iteration = 1;
  /// Router-level counters (serial bookkeeping + wall times); totals add
  /// the per-arena counters on top.
  RouteCounters cnt;

  /// Worst-case node out-degree bound, for Scratch::edge_buf.
  std::size_t edge_reserve = 0;

  /// Nets whose latest route needed the unconstrained-window retry: their
  /// tree can lie anywhere on the fabric, so the partition scheduler must
  /// keep them serial. Written only from serial route_net calls.
  std::vector<std::uint8_t> routed_unbounded;

  explicit Router(const RrGraphView& graph, const Placement& placement,
                  const RouteOptions& options)
      : g(graph), pl(placement), opt(options), occ(graph),
        timing(options.timing_driven ? options.timing_hook : nullptr) {
    if (opt.astar_factor > 0.0) {
      if (opt.lookahead) {
        la = opt.lookahead;  // shared: width probes / artifact cache
        cnt.t_lookahead_build_s = opt.lookahead_build_s;
        cnt.lookahead_cached = opt.lookahead_from_cache ? 1 : 0;
      } else if (timing) {
        // Delay-annotated table so directed search stays admissible in
        // the blended (seconds) cost space.
        const DelayProfile prof = timing->delay_profile();
        la = std::make_shared<const RouteLookahead>(g, &prof);
        cnt.t_lookahead_build_s = la->build_seconds();
      } else {
        la = std::make_shared<const RouteLookahead>(g);
        cnt.t_lookahead_build_s = la->build_seconds();
      }
    }
    if (timing) {
      node_delay = timing->node_delay();
      spb = timing->sec_per_base();
      if (la && la->has_delay_table()) delay_tab = la->delay_table();
    }
    const std::size_t n = g.node_count();
    history.assign(n, 0.0f);
    base_cost.resize(n);
    hot.resize(n);
    for (RrNodeId i = 0; i < n; ++i) {
      const RrNode nd = g.node(i);
      base_cost[i] = route_base_cost(nd);
      hot[i] = {nd.x_lo,
                nd.x_hi,
                nd.y_lo,
                nd.y_hi,
                0,
                nd.capacity,
                static_cast<std::uint16_t>(nd.type == RrType::kSink ? 1 : 0),
                0,
                la ? la->node_key(nd) : 0,
                0,
                0.0};
    }
    smark.assign(n, 0);
    bmark.assign(n, 0);
    pres_fac = opt.first_iter_pres_fac;
    kept.reserve(512);
    ppath.reserve(512);
    // Out-degree upper bound: a dense-fanout OPIN can reach every start
    // over four adjacent channel positions (4W); a wire carries at most
    // two taps per covered tile plus three switch-box moves.
    edge_reserve = 4 * g.arch().W + 2 * std::max(g.nx(), g.ny()) + 8;
    routed_unbounded.assign(pl.nets.size(), 0);
  }

  Scratch* acquire_scratch() {
    std::lock_guard<std::mutex> lk(scratch_mu);
    if (free_scratches.empty()) {
      scratches.push_back(
          std::make_unique<Scratch>(g.node_count(), edge_reserve));
      return scratches.back().get();
    }
    Scratch* s = free_scratches.back();
    free_scratches.pop_back();
    return s;
  }
  void release_scratch(Scratch* s) {
    std::lock_guard<std::mutex> lk(scratch_mu);
    free_scratches.push_back(s);
  }

  RouteCounters total_counters() const {
    RouteCounters t = cnt;
    for (const auto& s : scratches) {
      t.heap_pushes += s->cnt.heap_pushes;
      t.heap_pops += s->cnt.heap_pops;
      t.nodes_expanded += s->cnt.nodes_expanded;
      t.sink_searches += s->cnt.sink_searches;
      t.nets_routed += s->cnt.nets_routed;
      t.scratch_grows += s->cnt.scratch_grows;
      t.lookahead_hits += s->cnt.lookahead_hits;
      t.lookahead_suboptimal += s->cnt.lookahead_suboptimal;
      t.verify_dijkstra_expanded += s->cnt.verify_dijkstra_expanded;
      t.verify_astar_expanded += s->cnt.verify_astar_expanded;
    }
    if (timing) {
      t.sta_net_evals = timing->net_evals();
      t.sta_block_updates = timing->block_updates();
    }
    return t;
  }

  /// Occupancy changes go through these so the HotNode mirror and the
  /// incremental overuse tracker stay in lock step. Only ever called from
  /// the serial orchestration path — worker threads record their own-tree
  /// occupancy in the RelaxNode overlay instead.
  void inc_occ(RrNodeId id) {
    occ.inc(id);
    ++hot[id].occ;
  }
  void dec_occ(RrNodeId id) {
    occ.dec(id);
    --hot[id].occ;
  }
  /// Partition-worker variant: per-id state (occupancy, over flag, hot
  /// mirror) is written directly — partitions own disjoint id sets — and
  /// the shared overuse count/list changes are parked in `ops` for the
  /// deterministic absorb at the join.
  void inc_occ_deferred(RrNodeId id, OveruseTracker::DeferredOps& ops) {
    occ.inc_deferred(id, ops);
    ++hot[id].occ;
  }
  void dec_occ_deferred(RrNodeId id, OveruseTracker::DeferredOps& ops) {
    occ.dec_deferred(id, ops);
    --hot[id].occ;
  }

  /// Rebuild the per-iteration node-cost cache. The small deterministic
  /// jitter breaks the lock-step oscillations PathFinder can fall into
  /// when two nets see identical costs for each other's resources.
  void begin_iteration(std::size_t iter) {
    iteration = iter;
    const std::uint32_t salt = static_cast<std::uint32_t>(iter) * 40503u;
    const std::size_t n = hot.size();
    for (RrNodeId i = 0; i < n; ++i) {
      const std::uint32_t h = (i * 2654435761u) ^ salt;
      const double jitter =
          1.0 + 0.02 * static_cast<double>((h >> 16) & 0xff) / 255.0;
      hot[i].cost =
          (base_cost[i] * (1.0 + static_cast<double>(history[i]))) * jitter;
    }
  }

  /// Present-congestion cost of entering a node. `ov_add` is the overlay:
  /// occupancy the routing net's own tree has claimed but not committed,
  /// so the observed total equals what an inc-during-search router sees.
  double congestion_cost(const HotNode& hn, int ov_add) const {
    const int over =
        static_cast<int>(hn.occ) + ov_add + 1 - static_cast<int>(hn.cap);
    if (over <= 0) return hn.cost;
    return hn.cost * (1.0 + over * pres_fac);
  }

  /// Legacy Manhattan-distance lookahead (astar_factor == 0 only), in
  /// expected base cost (distance scaled by ~1 per tile traversed).
  double heuristic_from(const HotNode& a, int tx_lo, int tx_hi, int ty_lo,
                        int ty_hi) const {
    const auto clampdist = [](int lo1, int hi1, int lo2, int hi2) {
      if (hi1 < lo2) return lo2 - hi1;
      if (hi2 < lo1) return lo1 - hi2;
      return 0;
    };
    const int dx = clampdist(a.x_lo, a.x_hi, tx_lo, tx_hi);
    const int dy = clampdist(a.y_lo, a.y_hi, ty_lo, ty_hi);
    return opt.astar_fac * static_cast<double>(dx + dy);
  }

  static void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p);
#else
    (void)p;
#endif
  }

  /// One A* / Dijkstra run from the current tree seeds to `target`,
  /// bounded by the net window. `with_heur` false gives the plain
  /// Dijkstra reference verify_lookahead compares against. `crit` is the
  /// target connection's criticality (timing mode; ignored otherwise).
  /// On success the optimal path cost is in sc.relax[target].path_cost.
  bool search_sink(Scratch& sc, RrNodeId target, int x_lo, int x_hi,
                   int y_lo, int y_hi, bool with_heur, double crit) {
    ++sc.cur_epoch;
    const std::uint32_t ep = sc.cur_epoch;
    const std::uint32_t ov = sc.ov_cur;
    const HotNode& tn = hot[target];
    const int tx_lo = tn.x_lo, tx_hi = tn.x_hi;
    const int ty_lo = tn.y_lo, ty_hi = tn.y_hi;
    const bool use_table = with_heur && la != nullptr;
    const bool use_manhattan = with_heur && la == nullptr;
    const float* la_tab = use_table ? la->table() : nullptr;
    const std::int32_t tkey =
        use_table ? la->target_key(tn.x_lo, tn.y_lo) : 0;
    const double la_fac = opt.astar_factor;
    // Timing blend, hoisted per search (the criticality is a property of
    // the target connection): entering v costs
    //   crit * delay(v) + (1 - crit) * congestion_cost(v) * spb
    // and the heuristic blends the delay and base lookahead halves with
    // the same weights, so each half lower-bounds its cost term and the
    // blend stays admissible at astar_factor <= 1.
    const bool tm = timing != nullptr;
    const double inv_spb = tm ? (1.0 - crit) * spb : 0.0;

    auto h_of = [&](const HotNode& hn) -> double {
      if (use_table) {
        ++sc.cnt.lookahead_hits;
        const std::size_t idx = static_cast<std::size_t>(
            static_cast<std::int64_t>(hn.la_key) + tkey);
        if (tm) {
          const double dly =
              delay_tab ? static_cast<double>(delay_tab[idx]) : 0.0;
          return la_fac *
                 (crit * dly + inv_spb * static_cast<double>(la_tab[idx]));
        }
        return la_fac * static_cast<double>(la_tab[idx]);
      }
      if (use_manhattan) {
        const double h = heuristic_from(hn, tx_lo, tx_hi, ty_lo, ty_hi);
        // Manhattan distance bounds base cost, not delay: blend only the
        // congestion half (still admissible — the delay half is >= 0).
        return tm ? inv_spb * h : h;
      }
      return 0.0;
    };
    auto in_bb = [&](const HotNode& n) {
      return static_cast<int>(n.x_hi) >= x_lo &&
             static_cast<int>(n.x_lo) <= x_hi &&
             static_cast<int>(n.y_hi) >= y_lo &&
             static_cast<int>(n.y_lo) <= y_hi;
    };
    // Weighted A* (table factor > 1) never re-expands a closed node.
    // Scaling the table breaks its consistency, so a closed node can be
    // re-reached at lower g; re-expanding would restore exactness but at
    // factor > 1 the search is already only w-bounded, and the classic
    // WA*-without-reopening result keeps that same bound while expanding
    // each node at most once. At factor <= 1 the unscaled table is
    // consistent (thin-graph triangle inequality), re-expansion never
    // fires anyway, and leaving it enabled preserves the provable
    // Dijkstra-equality that verify_lookahead asserts. Closing is a
    // sentinel: -inf path_cost makes every later pop stale and every
    // relaxation attempt lose, with the prev chain left intact for the
    // backtrack and no new field in the packed RelaxNode.
    const bool no_reexpand = use_table && la_fac > 1.0;

    sc.heap.clear();
    for (RrNodeId n : sc.tree_nodes) {
      RelaxNode& rn = sc.relax[n];
      const double known = tm ? crit * sc.node_tdel[n] : 0.0;
      rn.path_cost = known;
      rn.epoch = ep;
      rn.prev = kNoRrNode;
      sc.heap_push({known + h_of(hot[n]), known, n});
    }
    while (!sc.heap.empty()) {
      const QItem item = sc.heap_pop();
      const RrNodeId u = item.node;
      if (sc.relax[u].epoch == ep &&
          item.known > sc.relax[u].path_cost + 1e-9) {
        continue;  // stale entry
      }
      ++sc.cnt.nodes_expanded;
      if (u == target) return true;
      if (no_reexpand) {
        sc.relax[u].path_cost = -std::numeric_limits<double>::infinity();
      }
      const std::span<const RrEdge> es = g.edges(u, sc.edge_buf);
      for (std::size_t k = 0; k < es.size(); ++k) {
        if (k + 4 < es.size()) prefetch(&hot[es[k + 4].to]);
        const RrNodeId v = es[k].to;
        const HotNode& vn = hot[v];
        if (!in_bb(vn)) continue;
        if (vn.is_sink && v != target) continue;
        RelaxNode& rn = sc.relax[v];
        const int ov_add = rn.ov_epoch == ov ? rn.ov_add : 0;
        const double new_cost =
            tm ? item.known + crit * node_delay[v] +
                     inv_spb * congestion_cost(vn, ov_add)
               : item.known + congestion_cost(vn, ov_add);
        if (rn.epoch != ep || new_cost < rn.path_cost - 1e-9) {
          rn.path_cost = new_cost;
          rn.epoch = ep;
          rn.prev = u;
          sc.heap_push({new_cost + h_of(vn), new_cost, v});
        }
      }
    }
    return false;
  }

  enum class NetStatus { kOk, kReplay, kFail };

  /// Route one net within its bounding window. Never mutates shared
  /// occupancy on the way to success — the caller applies commit()
  /// afterwards, which is what makes speculative parallel routing and
  /// serial routing share one code path. `speculative` turns the
  /// window-escape failure into kReplay (the serial replay owns retries);
  /// non-speculative failure releases the pre-seeded tree occupancy and
  /// reports kFail so route_net can retry unconstrained.
  NetStatus route_net_bb(Scratch& sc, std::size_t net_idx,
                         const PlacedNet& net, RouteTree& out,
                         std::size_t bb_margin, bool speculative) {
    const std::size_t seed_edges = out.edges.size();
    const BlockLoc& dloc = pl.locs[net.driver];
    const RrNodeId source = g.site(dloc.x, dloc.y).source;
    out.source = source;
    out.sinks.clear();

    // Net bounding box (+margin) restricts expansion.
    int x_lo = static_cast<int>(dloc.x), x_hi = x_lo;
    int y_lo = static_cast<int>(dloc.y), y_hi = y_lo;
    sc.sink_nodes.clear();
    for (std::size_t s : net.sinks) {
      const BlockLoc& l = pl.locs[s];
      sc.sink_nodes.push_back(g.site(l.x, l.y).sink);
      x_lo = std::min(x_lo, static_cast<int>(l.x));
      x_hi = std::max(x_hi, static_cast<int>(l.x));
      y_lo = std::min(y_lo, static_cast<int>(l.y));
      y_hi = std::max(y_hi, static_cast<int>(l.y));
    }
    const int m = static_cast<int>(bb_margin);
    x_lo -= m;
    x_hi += m;
    y_lo -= m;
    y_hi += m;

    // Sort sinks near-to-far from the driver. The keys are evaluated once
    // per sink up front — not O(n log n) times inside the comparator. In
    // timing mode the key is the same blended estimate the search
    // minimizes, and the per-connection criticalities are fetched here —
    // once per route attempt — for the searches below.
    sc.order.resize(sc.sink_nodes.size());
    sc.sink_keys.resize(sc.sink_nodes.size());
    if (timing) sc.sink_crit.resize(sc.sink_nodes.size());
    const HotNode& sn = hot[source];
    for (std::uint32_t i = 0; i < sc.order.size(); ++i) {
      sc.order[i] = i;
      const HotNode& tn = hot[sc.sink_nodes[i]];
      if (timing) {
        const double crit = timing->criticality(net_idx, i);
        sc.sink_crit[i] = crit;
        const double inv_spb = (1.0 - crit) * spb;
        if (la) {
          const RrNode src = g.node(source);
          const double dly =
              delay_tab ? la->delay_estimate(src, tn.x_lo, tn.y_lo) : 0.0;
          sc.sink_keys[i] =
              opt.astar_factor *
              (crit * dly + inv_spb * la->estimate(src, tn.x_lo, tn.y_lo));
        } else {
          sc.sink_keys[i] =
              inv_spb * heuristic_from(sn, tn.x_lo, tn.x_hi, tn.y_lo,
                                       tn.y_hi);
        }
      } else {
        sc.sink_keys[i] =
            la ? opt.astar_factor * la->estimate(g.node(source), tn.x_lo,
                                                 tn.y_lo)
               : heuristic_from(sn, tn.x_lo, tn.x_hi, tn.y_lo, tn.y_hi);
      }
    }
    // Timing mode routes the most critical sinks first (VPR order): the
    // earliest searches see an almost-empty tree, so critical
    // connections get the direct source paths and later, relaxed sinks
    // branch around them. Congestion-only keeps the legacy near-to-far
    // order bit-for-bit.
    std::sort(sc.order.begin(), sc.order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                if (timing && sc.sink_crit[a] != sc.sink_crit[b]) {
                  return sc.sink_crit[a] > sc.sink_crit[b];
                }
                return sc.sink_keys[a] < sc.sink_keys[b];
              });

    // Tree membership via epoch marks; seed from any pre-kept edges. In
    // timing mode each tree node also carries its delay from the source
    // (the same per-node stage delays the STA measures), so later sink
    // searches start tree seeds at known = crit * delay-from-source: a
    // critical sink no longer sees branching off a long meander as free.
    ++sc.mark_cur;
    sc.tree_nodes.clear();
    sc.tree_nodes.push_back(source);
    sc.mark[source] = sc.mark_cur;
    if (timing) {
      if (sc.node_tdel.size() != g.node_count()) {
        sc.node_tdel.assign(g.node_count(), 0.0);
      }
      sc.node_tdel[source] = 0.0;
    }
    for (std::size_t i = 0; i < seed_edges; ++i) {
      const RrNodeId to = out.edges[i].second;
      if (sc.mark[to] != sc.mark_cur) {
        sc.mark[to] = sc.mark_cur;
        sc.tree_nodes.push_back(to);
        if (timing) {
          sc.node_tdel[to] =
              sc.node_tdel[out.edges[i].first] + node_delay[to];
        }
      }
    }
    const std::size_t n_seed = sc.tree_nodes.size();

    for (std::uint32_t oi : sc.order) {
      const RrNodeId target = sc.sink_nodes[oi];
      if (sc.mark[target] == sc.mark_cur) {
        // Another sink block shares this SINK node; already reached.
        out.sinks.push_back(target);
        continue;
      }
      ++sc.cnt.sink_searches;
      const double crit = timing ? sc.sink_crit[oi] : 0.0;
      bool found;
      if (opt.verify_lookahead && la) {
        // Admissibility probe: a zero-heuristic Dijkstra on the identical
        // cost state first (its work excluded from the counters), then
        // the directed search, then compare optimal costs. The probe is
        // also the honest way to measure what the table buys: the same
        // searches on the same cost states, heuristic on vs off
        // (dijkstra_expanded / astar_expanded — route_perf --verify-la
        // reports the ratio).
        const RouteCounters saved = sc.cnt;
        const bool ref_found =
            search_sink(sc, target, x_lo, x_hi, y_lo, y_hi, false, crit);
        const double ref_cost =
            ref_found ? sc.relax[target].path_cost : 0.0;
        const std::uint64_t ref_exp =
            sc.cnt.nodes_expanded - saved.nodes_expanded;
        sc.cnt = saved;
        found = search_sink(sc, target, x_lo, x_hi, y_lo, y_hi, true, crit);
        sc.cnt.verify_dijkstra_expanded += ref_exp;
        sc.cnt.verify_astar_expanded +=
            sc.cnt.nodes_expanded - saved.nodes_expanded;
        if (found != ref_found ||
            (found && sc.relax[target].path_cost > ref_cost + 1e-9)) {
          ++sc.cnt.lookahead_suboptimal;
          if (std::getenv("NF_LA_DEBUG")) {
            const HotNode& tn = hot[target];
            std::fprintf(stderr,
                         "LA subopt: target=%u at (%u,%u) astar=%.9f "
                         "dijkstra=%.9f\n",
                         target, tn.x_lo, tn.y_lo,
                         found ? sc.relax[target].path_cost : -1.0,
                         ref_found ? ref_cost : -1.0);
          }
        }
      } else {
        found = search_sink(sc, target, x_lo, x_hi, y_lo, y_hi, true, crit);
      }
      if (!found) {
        if (speculative) {
          // Roll back to the seed tree; the serial replay will retry.
          out.edges.resize(seed_edges);
          out.sinks.clear();
          return NetStatus::kReplay;
        }
        // Release the pre-seeded tree's occupancy (the source holds
        // none; new nodes never took any — the overlay is discarded).
        for (std::size_t i = 1; i < n_seed; ++i) {
          dec_occ(sc.tree_nodes[i]);
        }
        return NetStatus::kFail;
      }
      // Backtrace; new nodes join the tree and the occupancy overlay.
      sc.path.clear();
      RrNodeId n = target;
      while (sc.relax[n].prev != kNoRrNode) {
        sc.path.emplace_back(sc.relax[n].prev, n);
        n = sc.relax[n].prev;
      }
      for (auto it = sc.path.rbegin(); it != sc.path.rend(); ++it) {
        out.edges.push_back(*it);
        if (sc.mark[it->second] != sc.mark_cur) {
          sc.mark[it->second] = sc.mark_cur;
          sc.tree_nodes.push_back(it->second);
          if (timing) {
            sc.node_tdel[it->second] =
                sc.node_tdel[it->first] + node_delay[it->second];
          }
          RelaxNode& rn = sc.relax[it->second];
          if (rn.ov_epoch != sc.ov_cur) {
            rn.ov_epoch = sc.ov_cur;
            rn.ov_add = 1;
          } else {
            ++rn.ov_add;
          }
        }
      }
      out.sinks.push_back(target);
    }
    sc.seed_edges = seed_edges;
    return NetStatus::kOk;
  }

  /// Route one net; tree written into `out`. `out` may arrive pre-seeded
  /// with a congestion-free partial tree (prune_ripup) whose nodes still
  /// hold occupancy; a fresh/empty `out` routes from scratch. Success
  /// leaves the new edges' occupancy uncommitted (sc.seed_edges marks
  /// where they start) — pair every kOk with commit(). kFail means a sink
  /// was unreachable even unconstrained (graph disconnection — hard
  /// failure); kReplay (speculative only) means the serial replay must
  /// redo this net.
  NetStatus route_net(Scratch& sc, std::size_t net_idx, const PlacedNet& net,
                      RouteTree& out, std::size_t extra_bb,
                      bool speculative) {
    const std::size_t cap_before = sc.capacity();
    ++sc.cnt.nets_routed;
    ++sc.ov_cur;
    // Routes outside the net bounding box are rare but legal (sparse track
    // connectivity can force a detour); retry unconstrained before giving
    // up.
    NetStatus st = route_net_bb(sc, net_idx, net, out,
                                opt.bb_margin + extra_bb, speculative);
    if (st == NetStatus::kFail && !speculative) {
      out = RouteTree{};
      ++sc.ov_cur;
      // The retry's tree can land anywhere — flag the net so the
      // partition scheduler keeps it serial from now on. Only serial
      // calls reach here (speculative routing defers failures instead).
      routed_unbounded[net_idx] = 1;
      st = route_net_bb(sc, net_idx, net, out, g.nx() + g.ny(), speculative);
    }
    if (sc.capacity() != cap_before) ++sc.cnt.scratch_grows;
    return st;
  }

  /// Apply a routed net's occupancy: each edge appended by this route
  /// added exactly one new tree node (its `to` — the backtrace only
  /// traverses fresh nodes, pre-seeded tree nodes are search seeds), so
  /// the edge tail sequence *is* the new-node sequence, in the same order
  /// an inc-during-search router would have claimed them.
  void commit(const RouteTree& t, std::size_t seed_edges) {
    for (std::size_t i = seed_edges; i < t.edges.size(); ++i) {
      inc_occ(t.edges[i].second);
    }
    inc_occ(t.source);
  }
  /// commit() for partition workers (deferred shared-state updates); the
  /// inc order per node sequence is identical.
  void commit_deferred(const RouteTree& t, std::size_t seed_edges,
                       OveruseTracker::DeferredOps& ops) {
    for (std::size_t i = seed_edges; i < t.edges.size(); ++i) {
      inc_occ_deferred(t.edges[i].second, ops);
    }
    inc_occ_deferred(t.source, ops);
  }

  /// Batch conflict marks: a committed member's claimed nodes, checked by
  /// later members of the same batch. The scheduling rectangles keep
  /// members' *bounding boxes* apart but not their full routing windows,
  /// so two speculative trees can claim the same node in the shared
  /// margin zone — the member with the higher net index is then re-routed
  /// serially (deterministic: the frozen batch state and the commit order
  /// decide, never the thread count). debug_replay_every exercises the
  /// same path on demand.
  bool conflicts(const RouteTree& t, std::size_t seed_edges) const {
    if (bmark[t.source] == bmark_cur) return true;
    for (std::size_t i = seed_edges; i < t.edges.size(); ++i) {
      if (bmark[t.edges[i].second] == bmark_cur) return true;
    }
    return false;
  }
  void mark_committed(const RouteTree& t, std::size_t seed_edges) {
    bmark[t.source] = bmark_cur;
    for (std::size_t i = seed_edges; i < t.edges.size(); ++i) {
      bmark[t.edges[i].second] = bmark_cur;
    }
  }

  /// Release a whole tree's occupancy.
  void rip_up(const RouteTree& t) {
    if (t.source == kNoRrNode) return;
    dec_occ(t.source);
    ++smark_cur;
    for (const auto& [from, to] : t.edges) {
      (void)from;
      if (smark[to] != smark_cur) {
        smark[to] = smark_cur;
        dec_occ(to);
      }
    }
  }

  /// Charge a pre-existing live routing's occupancy before the first
  /// seeded iteration (route_incremental): the exact mirror of rip_up,
  /// including the duplicate-edge dedup, so seeding then ripping a tree
  /// is occupancy-neutral.
  void seed_occupancy(const std::vector<RouteTree>& trees) {
    for (const RouteTree& t : trees) {
      if (t.source == kNoRrNode) continue;
      inc_occ(t.source);
      ++smark_cur;
      for (const auto& [from, to] : t.edges) {
        (void)from;
        if (smark[to] != smark_cur) {
          smark[to] = smark_cur;
          inc_occ(to);
        }
      }
    }
  }

  /// rip_up() for partition workers: identical node sequence, but the
  /// shared-state side of each dec is deferred into `ops` and the
  /// duplicate-edge dedup uses the worker's own scratch marks (smark
  /// belongs to the serial orchestration path).
  void rip_up_deferred(Scratch& sc, const RouteTree& t,
                       OveruseTracker::DeferredOps& ops) {
    if (t.source == kNoRrNode) return;
    dec_occ_deferred(t.source, ops);
    ++sc.mark_cur;
    for (const auto& [from, to] : t.edges) {
      (void)from;
      if (sc.mark[to] != sc.mark_cur) {
        sc.mark[to] = sc.mark_cur;
        dec_occ_deferred(to, ops);
      }
    }
  }

  /// Partial rip-up: keep the maximal source-connected subtree that is
  /// free of overused nodes *and* still feeds at least one sink (stub
  /// branches whose sinks were congested away release their occupancy
  /// too, or they would hoard capacity forever). Kept nodes retain
  /// occupancy; `t` becomes the seed tree route_net rebuilds from. The
  /// source's own occupancy is released because commit() re-takes it.
  void prune_tree(const PlacedNet& net, RouteTree& t) {
    if (t.source == kNoRrNode) return;
    // Pass 1 (forward, parent-before-child): clean, source-connected.
    kept.clear();
    ++smark_cur;
    const std::uint32_t keep_m = smark_cur;
    if (!occ.overused(t.source)) smark[t.source] = keep_m;
    for (const auto& e : t.edges) {
      if (smark[e.first] == keep_m && !occ.overused(e.second)) {
        smark[e.second] = keep_m;
        kept.push_back(e);
      } else {
        dec_occ(e.second);
      }
    }
    // Pass 2 (reverse): drop branches that reach none of the net's sinks.
    ++smark_cur;
    const std::uint32_t useful_m = smark_cur;
    for (std::size_t s : net.sinks) {
      const BlockLoc& l = pl.locs[s];
      const RrNodeId sk = g.site(l.x, l.y).sink;
      if (smark[sk] == keep_m) smark[sk] = useful_m;
    }
    ppath.clear();  // reversed survivors
    for (auto it = kept.rbegin(); it != kept.rend(); ++it) {
      if (smark[it->second] == useful_m) {
        smark[it->first] = useful_m;
        ppath.push_back(*it);
      } else {
        dec_occ(it->second);
      }
    }
    dec_occ(t.source);
    t.edges.assign(ppath.rbegin(), ppath.rend());
    t.sinks.clear();
  }

  void update_history() {
    occ.for_each_overused([this](RrNodeId i, int over) {
      history[i] += static_cast<float>(opt.history_fac * over);
    });
  }
};

/// Shared orchestration behind route_all and route_incremental. In seeded
/// mode `seed_trees` is a live routing (empty trees mark the nets to
/// (re)route); its occupancy is charged up front and *every* iteration —
/// including the first — runs the incremental rip/skip discipline, so
/// kept trees stay untouched unless congestion reaches them. Unseeded,
/// this is exactly the classic route_all: iteration 1 routes every net.
RoutingResult route_session(const RrGraphView& g, const Placement& pl,
                            const RouteOptions& opt,
                            std::vector<RouteTree> seed_trees, bool seeded) {
  Router router(g, pl, opt);
  using NetStatus = Router::NetStatus;
  RoutingResult res;
  if (seeded) {
    res.trees = std::move(seed_trees);
    router.seed_occupancy(res.trees);
    // Seeded sessions skip the near-free exploratory first iteration:
    // the kept trees already encode a converged negotiation, and the
    // cleared nets should route around them, not through them.
    router.pres_fac = std::min(opt.seeded_pres_fac, opt.pres_fac_max);
  } else {
    res.trees.assign(pl.nets.size(), {});
  }
  res.routed_nets.assign(pl.nets.size(), 0);
  std::size_t best_overuse = static_cast<std::size_t>(-1);
  std::size_t best_iter = 0;
  // Per-iteration overuse history, feeding the hopeless-probe predictor
  // below (indexed by iteration - 1).
  std::vector<std::size_t> ou_hist;
  ou_hist.reserve(opt.max_iterations);

  // The arena used by every serial route (whole run in serial mode; rip
  // stage + conflict replays in batched mode).
  Router::Scratch& main_sc = *router.acquire_scratch();

  // A net only needs rerouting while its tree touches an overused node —
  // a per-node flag lookup against the incremental overuse tracker.
  auto touches_overuse = [&](const RouteTree& t) {
    if (t.source == kNoRrNode) return true;
    if (router.occ.overused(t.source)) return true;
    for (const auto& [from, to] : t.edges) {
      (void)from;
      if (router.occ.overused(to)) return true;
    }
    return false;
  };

  // Nets that stay congested get a progressively wider routing window:
  // the bounding-box constraint can hide every alternative to a contended
  // resource, freezing a conflict no cost growth can break.
  std::vector<std::size_t> extra_bb(pl.nets.size(), 0);

  // Timing-driven orchestration: the hook re-analyzes timing at the start
  // of each iteration over exactly the nets the previous one (re)routed —
  // the incremental-STA contract — and once more over the final trees.
  const bool timing_on = opt.timing_driven && opt.timing_hook != nullptr;
  std::vector<std::size_t> dirty;
  if (timing_on) dirty.reserve(pl.nets.size());

  auto fail_out = [&](double t0) {
    res.success = false;
    res.overused_nodes = router.occ.overused_count();
    router.cnt.t_search_s += wall_s() - t0;
    res.counters = router.total_counters();
    return res;
  };

  // Batched-mode state, reused across iterations.
  struct Member {
    RouteTree tree;
    NetStatus st = NetStatus::kFail;
    std::size_t seed_edges = 0;
  };
  std::vector<std::vector<std::size_t>> batches;
  std::vector<std::size_t> live;
  std::vector<Member> members;

  // Partition-parallel state. The region grid is fixed for the whole run
  // (fabric geometry only); net classification is per iteration because
  // the routing windows widen (extra_bb) and nets can go unbounded.
  const bool part_mode = opt.net_parallel && opt.partition_parallel;
  std::size_t preg = 0, pgx = 0, pgy = 0;
  std::vector<std::vector<std::size_t>> part_nets;
  std::vector<std::size_t> serial_nets;
  struct PartResult {
    OveruseTracker::DeferredOps ops;
    std::vector<std::size_t> routed;    ///< Committed in-region, net order.
    std::vector<std::size_t> deferred;  ///< Window escapes -> serial phase.
  };
  std::vector<PartResult> presults;
  if (part_mode) {
    const std::size_t gx = g.nx() + 2, gy = g.ny() + 2;
    preg = opt.partition_size != 0
               ? opt.partition_size
               : std::max<std::size_t>(4, (std::max(gx, gy) + 3) / 4);
    preg = std::max<std::size_t>(preg, 1);
    pgx = (gx + preg - 1) / preg;
    pgy = (gy + preg - 1) / preg;
    part_nets.resize(pgx * pgy);
    presults.resize(pgx * pgy);
  }

  if (opt.net_parallel && !part_mode) {
    // Partition every net — in net order — into batches whose scheduling
    // rectangles (net bounding box + kSchedMargin) are pairwise disjoint
    // within a batch, by first-fit coloring: a per-cell bitmask records
    // which of the first 64 batches already touch the cell, and a net
    // takes the lowest batch free across its whole rectangle. First-fit
    // matters — the obvious "one past the deepest batch seen" chaining
    // degenerates to singleton batches because net order follows cluster
    // order, so consecutive nets overlap at their shared driver tile and
    // the level sequence climbs monotonically; first-fit instead packs
    // nets from across the whole grid into every batch. Nets whose
    // rectangles see all 64 colors (only the hottest cells on the
    // biggest fabrics) overflow into levelized batches above 64.
    //
    // The rectangle deliberately does NOT cover the whole routing window
    // (bb_margin + wire reach + later widening): that would make batches
    // provably conflict-free but degenerate, since on MCNC-scale fabrics
    // the inflated windows blanket the grid. Tight rectangles give real
    // batch widths; the price is that two members' trees can
    // occasionally claim the same node in the shared margin zone — or a
    // shared SOURCE/SINK site node — which the commit stage detects and
    // resolves by deterministic serial replay
    // (RouteCounters::conflict_replays). The partition depends only on
    // the placement — never on the thread count or any routing state —
    // so it is computed once per route_all and the whole schedule is
    // bit-deterministic.
    constexpr int kSchedMargin = 1;
    const std::size_t gx = g.nx() + 2, gy = g.ny() + 2;
    std::vector<std::uint64_t> color(gx * gy, 0);
    std::vector<std::uint32_t> level(gx * gy, 64);
    for (std::size_t n = 0; n < pl.nets.size(); ++n) {
      const PlacedNet& net = pl.nets[n];
      const BlockLoc& dloc = pl.locs[net.driver];
      int bx_lo = static_cast<int>(dloc.x), bx_hi = bx_lo;
      int by_lo = static_cast<int>(dloc.y), by_hi = by_lo;
      for (std::size_t s : net.sinks) {
        const BlockLoc& l = pl.locs[s];
        bx_lo = std::min(bx_lo, static_cast<int>(l.x));
        bx_hi = std::max(bx_hi, static_cast<int>(l.x));
        by_lo = std::min(by_lo, static_cast<int>(l.y));
        by_hi = std::max(by_hi, static_cast<int>(l.y));
      }
      bx_lo = std::max(bx_lo - kSchedMargin, 0);
      by_lo = std::max(by_lo - kSchedMargin, 0);
      bx_hi = std::min(bx_hi + kSchedMargin, static_cast<int>(gx) - 1);
      by_hi = std::min(by_hi + kSchedMargin, static_cast<int>(gy) - 1);
      std::uint64_t used = 0;
      std::uint32_t lvl = 64;
      for (int x = bx_lo; x <= bx_hi; ++x) {
        const std::size_t row = static_cast<std::size_t>(x) * gy;
        for (int y = by_lo; y <= by_hi; ++y) {
          used |= color[row + y];
          lvl = std::max(lvl, level[row + y]);
        }
      }
      const std::uint32_t b =
          used != ~0ull ? static_cast<std::uint32_t>(std::countr_one(used))
                        : lvl;
      if (b >= batches.size()) batches.resize(b + 1);
      batches[b].push_back(n);
      for (int x = bx_lo; x <= bx_hi; ++x) {
        const std::size_t row = static_cast<std::size_t>(x) * gy;
        for (int y = by_lo; y <= by_hi; ++y) {
          if (b < 64) {
            color[row + y] |= 1ull << b;
          } else {
            level[row + y] = b + 1;
          }
        }
      }
    }
  }

  for (std::size_t iter = 1; iter <= opt.max_iterations; ++iter) {
    res.iterations = iter;
    if (timing_on) {
      const double ts = wall_s();
      opt.timing_hook->update(g, res.trees, dirty, iter);
      dirty.clear();
      router.cnt.t_sta_s += wall_s() - ts;
    }
    double t0 = wall_s();
    router.begin_iteration(iter);
    router.cnt.t_bookkeep_s += wall_s() - t0;
    t0 = wall_s();

    if (!opt.net_parallel) {
      // Serial mode: the classic PathFinder net loop, bit-identical to
      // the pre-batching router (route-then-commit observes the exact
      // occupancy sequence inc-during-search did, via the overlay).
      for (std::size_t n = 0; n < pl.nets.size(); ++n) {
        if (iter > 1 || seeded) {
          if (opt.incremental) {
            // Congestion fully cleared mid-iteration: every remaining net
            // would fail touches_overuse anyway. Not taken on the seeded
            // first iteration — empty (invalidated) trees carry no
            // overuse but still need their first route.
            if (iter > 1 && router.occ.overused_count() == 0) break;
            if (!touches_overuse(res.trees[n])) continue;
          }
          ++router.cnt.nets_rerouted;
          if (opt.prune_ripup) {
            router.prune_tree(pl.nets[n], res.trees[n]);
          } else {
            router.rip_up(res.trees[n]);
            res.trees[n] = RouteTree{};
          }
          if (iter > 12) {
            extra_bb[n] =
                std::min<std::size_t>(extra_bb[n] + 2, g.nx() + g.ny());
          }
        }
        if (router.route_net(main_sc, n, pl.nets[n], res.trees[n],
                             extra_bb[n],
                             /*speculative=*/false) != NetStatus::kOk) {
          // Hard disconnection — no amount of iteration will fix it.
          return fail_out(t0);
        }
        router.commit(res.trees[n], main_sc.seed_edges);
        res.routed_nets[n] = 1;
        if (timing_on) dirty.push_back(n);
      }
    } else if (part_mode) {
      // Region-partitioned mode. Three phases, all deterministic:
      //
      // 1. Classify (serial, net order): each net needing a reroute is
      //    assigned to the unique region that contains its dilated
      //    routing window — bounding box, plus the full window margin it
      //    will route with this iteration, plus the maximum wire reach
      //    (L-1) so every RR node a search could *touch* lies inside the
      //    region. Nets whose dilated window straddles regions, and nets
      //    that ever needed an unbounded retry, go to the serial list
      //    instead. Full rip-up deliberately does NOT happen here:
      //    ripping every net before any of them reroutes erases the
      //    congestion signal PathFinder negotiates over (each net would
      //    route against near-empty occupancy and pile back onto the
      //    same tracks, oscillating instead of converging), so rips
      //    happen lazily, right before each net's own reroute. The
      //    prune_ripup variant is the exception — it only releases
      //    congested branches, keeping the signal — and stays here where
      //    the shared scratch marks are safe to use.
      //
      // 2. Parallel phase: each region rips and routes its nets serially
      //    in net order against the live occupancy, through the deferred
      //    tracker API. Because a region only ever touches its own node
      //    ids (the dilation argument: every node a search can touch —
      //    and every node of the net's previous tree, routed under a
      //    never-wider-than-current window — lies inside the dilated
      //    window), regions are state-disjoint and the parallel phase is
      //    bit-identical to routing the regions one after another — at
      //    any thread count. A window-escape failure is deferred to the
      //    serial phase with the net already ripped — exactly the state
      //    a serial reroute starts from (prune seeds stay intact).
      //
      // 3. Join + serial phase: deferred tracker state is absorbed in
      //    region index order; boundary and deferred nets then rip and
      //    route serially — interleaved per net, so later serial nets
      //    still exert congestion pressure — in ascending net order with
      //    full (unbounded-retry) semantics.
      for (auto& v : part_nets) v.clear();
      serial_nets.clear();
      const std::size_t gx = g.nx() + 2, gy = g.ny() + 2;
      const int reach = static_cast<int>(g.arch().L) - 1;
      for (std::size_t n = 0; n < pl.nets.size(); ++n) {
        if (iter > 1 || seeded) {
          if (opt.incremental && !touches_overuse(res.trees[n])) continue;
          ++router.cnt.nets_rerouted;
          if (opt.prune_ripup) {
            router.prune_tree(pl.nets[n], res.trees[n]);
          }
          if (iter > 12) {
            extra_bb[n] =
                std::min<std::size_t>(extra_bb[n] + 2, g.nx() + g.ny());
          }
        }
        const PlacedNet& net = pl.nets[n];
        const BlockLoc& dloc = pl.locs[net.driver];
        int bx_lo = static_cast<int>(dloc.x), bx_hi = bx_lo;
        int by_lo = static_cast<int>(dloc.y), by_hi = by_lo;
        for (std::size_t s : net.sinks) {
          const BlockLoc& l = pl.locs[s];
          bx_lo = std::min(bx_lo, static_cast<int>(l.x));
          bx_hi = std::max(bx_hi, static_cast<int>(l.x));
          by_lo = std::min(by_lo, static_cast<int>(l.y));
          by_hi = std::max(by_hi, static_cast<int>(l.y));
        }
        const int m =
            static_cast<int>(opt.bb_margin + extra_bb[n]) + reach;
        bx_lo = std::max(bx_lo - m, 0);
        by_lo = std::max(by_lo - m, 0);
        bx_hi = std::min(bx_hi + m, static_cast<int>(gx) - 1);
        by_hi = std::min(by_hi + m, static_cast<int>(gy) - 1);
        const std::size_t px = static_cast<std::size_t>(bx_lo) / preg;
        const std::size_t py = static_cast<std::size_t>(by_lo) / preg;
        const bool interior =
            !router.routed_unbounded[n] &&
            static_cast<std::size_t>(bx_hi) / preg == px &&
            static_cast<std::size_t>(by_hi) / preg == py;
        if (interior) {
          part_nets[py * pgx + px].push_back(n);
        } else {
          serial_nets.push_back(n);
        }
      }

      std::size_t nonempty = 0;
      for (const auto& v : part_nets) nonempty += v.empty() ? 0 : 1;
      if (nonempty != 0) {
        router.cnt.batches += nonempty;
        parallel_for(part_nets.size(), [&](std::size_t p) {
          const auto& nets = part_nets[p];
          if (nets.empty()) return;
          PartResult& pr = presults[p];
          Router::Scratch* sc = router.acquire_scratch();
          for (const std::size_t n : nets) {
            if ((iter > 1 || seeded) && !opt.prune_ripup) {
              router.rip_up_deferred(*sc, res.trees[n], pr.ops);
              res.trees[n] = RouteTree{};
            }
            const NetStatus st =
                router.route_net(*sc, n, pl.nets[n], res.trees[n],
                                 extra_bb[n], /*speculative=*/true);
            if (st == NetStatus::kOk) {
              router.commit_deferred(res.trees[n], sc->seed_edges, pr.ops);
              pr.routed.push_back(n);
            } else {
              // Deferred to the serial phase. The rollback left the seed
              // tree (holding occupancy only under prune_ripup); clear
              // the fully-ripped case so the serial rip below is a no-op.
              if (!opt.prune_ripup) res.trees[n] = RouteTree{};
              pr.deferred.push_back(n);
            }
          }
          router.release_scratch(sc);
        });
        for (std::size_t p = 0; p < part_nets.size(); ++p) {
          PartResult& pr = presults[p];
          router.occ.absorb(pr.ops);
          for (const std::size_t n : pr.routed) res.routed_nets[n] = 1;
          if (timing_on) {
            dirty.insert(dirty.end(), pr.routed.begin(), pr.routed.end());
          }
          pr.routed.clear();
          for (const std::size_t n : pr.deferred) {
            ++router.cnt.conflict_replays;
            serial_nets.push_back(n);
          }
          pr.deferred.clear();
        }
        std::sort(serial_nets.begin(), serial_nets.end());
      }

      for (const std::size_t n : serial_nets) {
        if ((iter > 1 || seeded) && !opt.prune_ripup) {
          router.rip_up(res.trees[n]);
          res.trees[n] = RouteTree{};
        }
        if (router.route_net(main_sc, n, pl.nets[n], res.trees[n],
                             extra_bb[n],
                             /*speculative=*/false) != NetStatus::kOk) {
          return fail_out(t0);
        }
        router.commit(res.trees[n], main_sc.seed_edges);
        res.routed_nets[n] = 1;
        if (timing_on) dirty.push_back(n);
      }
    } else {
      // Batched mode, over the placement-time partition computed above.
      // Which batch members actually reroute is decided at the batch's
      // rip stage against the *live* occupancy, exactly like the serial
      // loop: commits interleave between batches in net order, so a net
      // freshly congested by an earlier batch still reroutes within the
      // same iteration. Members of one batch route concurrently against
      // the occupancy frozen at batch start; the commit stage then
      // resolves same-batch collisions by serial replay in ascending net
      // order. Everything — schedule, frozen state, commit order, replay
      // decisions — is independent of the thread count.
      for (const auto& batch : batches) {
        if (iter > 1 && opt.incremental &&
            router.occ.overused_count() == 0) {
          break;
        }
        // Rip stage (serial, net order): membership is decided against
        // the live occupancy — exactly the serial loop's per-net check.
        live.clear();
        for (std::size_t n : batch) {
          if (iter > 1 || seeded) {
            if (opt.incremental && !touches_overuse(res.trees[n])) continue;
            ++router.cnt.nets_rerouted;
            if (opt.prune_ripup) {
              router.prune_tree(pl.nets[n], res.trees[n]);
            } else {
              router.rip_up(res.trees[n]);
              res.trees[n] = RouteTree{};
            }
            if (iter > 12) {
              extra_bb[n] =
                  std::min<std::size_t>(extra_bb[n] + 2, g.nx() + g.ny());
            }
          }
          live.push_back(n);
        }
        if (live.empty()) continue;
        if (live.size() == 1) {
          // A one-member batch is the serial loop with extra steps:
          // route it directly against the live state — no dispatch, no
          // speculation, not counted as a parallel batch. Batch width is
          // thread-count independent, so so is taking this path.
          const std::size_t n = live[0];
          if (router.route_net(main_sc, n, pl.nets[n], res.trees[n],
                               extra_bb[n], /*speculative=*/false) !=
              NetStatus::kOk) {
            return fail_out(t0);
          }
          router.commit(res.trees[n], main_sc.seed_edges);
          res.routed_nets[n] = 1;
          if (timing_on) dirty.push_back(n);
          continue;
        }
        ++router.cnt.batches;

        // Route stage: members run concurrently against the shared state
        // frozen for the whole batch, each recording its own-tree
        // occupancy in its scratch overlay.
        members.resize(live.size());
        parallel_for(live.size(), [&](std::size_t i) {
          Router::Scratch* sc = router.acquire_scratch();
          Member& m = members[i];
          m.tree = res.trees[live[i]];
          m.st = router.route_net(*sc, live[i], pl.nets[live[i]], m.tree,
                                  extra_bb[live[i]], /*speculative=*/true);
          m.seed_edges = sc->seed_edges;
          router.release_scratch(sc);
        });

        // Commit stage (serial, ascending net order). A member is
        // replayed — re-routed serially against the live state, with the
        // unconstrained-retry semantics — when its speculative route
        // escaped the window, when it claimed a node an earlier member of
        // this batch committed, or when the debug hook says so.
        ++router.bmark_cur;
        for (std::size_t i = 0; i < live.size(); ++i) {
          const std::size_t n = live[i];
          Member& m = members[i];
          bool replay = m.st != NetStatus::kOk;
          if (!replay && opt.debug_replay_every != 0 &&
              (i + 1) % opt.debug_replay_every == 0) {
            replay = true;
          }
          if (!replay && router.conflicts(m.tree, m.seed_edges)) {
            replay = true;
          }
          if (!replay) {
            router.mark_committed(m.tree, m.seed_edges);
            router.commit(m.tree, m.seed_edges);
            res.trees[n] = std::move(m.tree);
          } else {
            ++router.cnt.conflict_replays;
            if (router.route_net(main_sc, n, pl.nets[n], res.trees[n],
                                 extra_bb[n], /*speculative=*/false) !=
                NetStatus::kOk) {
              return fail_out(t0);
            }
            router.mark_committed(res.trees[n], main_sc.seed_edges);
            router.commit(res.trees[n], main_sc.seed_edges);
          }
          res.routed_nets[n] = 1;
          if (timing_on) dirty.push_back(n);
        }
      }
    }

    router.cnt.t_search_s += wall_s() - t0;
    res.overused_nodes = router.occ.overused_count();
    if (std::getenv("NF_ROUTE_DEBUG")) {
      std::fprintf(stderr, "iter %zu overused=%zu pres=%g\n", iter,
                   res.overused_nodes, router.pres_fac);
      for (RrNodeId i = 0; i < g.node_count(); ++i) {
        if (router.occ.overused(i)) {
          std::fprintf(stderr, "  node %u type=%d occ=%d cap=%d\n", i,
                       static_cast<int>(g.node(i).type), router.occ.occ(i),
                       router.occ.capacity(i));
        }
      }
    }
    if (res.overused_nodes == 0) {
      res.success = true;
      break;
    }
    // Plateau detection: large congestion that stops improving will not
    // resolve; bail out early so channel-width searches stay fast. Small
    // residual overuse (a handful of nodes) is left to the growing
    // present-cost factor, which routinely clears it late.
    if (res.overused_nodes < best_overuse) {
      best_overuse = res.overused_nodes;
      best_iter = iter;
    } else if (best_overuse > 20 && iter > best_iter + 15 &&
               res.overused_nodes > best_overuse * 95 / 100) {
      break;
    }
    // Infeasibility prediction, two deterministic rules (iteration counts
    // are part of the golden contract; the reference oracle transcribes
    // both rules verbatim):
    //
    // 1. Structural-congestion cut: when congestion still spans more than
    //    a quarter of all nets at the fixed checkpoint iteration, the
    //    shortage is structural and negotiation cannot clear it. Feasible
    //    routes are far below this by then — across the MCNC set the
    //    worst passing probe sits at nets/16 at iteration 12, a 4x
    //    margin — while deep-infeasible channel-width probes plateau at
    //    half the net count indefinitely.
    //
    // 2. Slope forecast: extrapolate the overuse trend over a
    //    16-iteration window and abort when even this optimistic linear
    //    forecast overshoots the iteration budget by 50%. Catches the
    //    slowly-decaying infeasible probes the checkpoint cut admits;
    //    feasible probes collapse steeply (hundreds to single digits
    //    within ~20 iterations) and never come close to tripping it.
    ou_hist.push_back(res.overused_nodes);
    if (iter == 12 && res.overused_nodes * 4 > pl.nets.size()) {
      break;
    }
    if (iter >= 24 && res.overused_nodes > 20) {
      const std::size_t prev = ou_hist[ou_hist.size() - 17];
      if (prev > res.overused_nodes) {
        const double slope =
            static_cast<double>(prev - res.overused_nodes) / 16.0;
        const double predicted =
            static_cast<double>(iter) +
            static_cast<double>(res.overused_nodes) / slope;
        if (predicted > 1.5 * static_cast<double>(opt.max_iterations)) {
          break;
        }
      }
    }
    t0 = wall_s();
    router.update_history();
    router.cnt.t_bookkeep_s += wall_s() - t0;
    router.pres_fac =
        std::min(router.pres_fac * opt.pres_fac_mult, opt.pres_fac_max);
  }

  if (res.success && timing_on) {
    // Final STA pass over the winning trees (the last iteration's reroutes
    // have not been analyzed yet) so the reported critical path and slack
    // describe exactly the routing being returned.
    const double ts = wall_s();
    opt.timing_hook->update(g, res.trees, dirty, res.iterations + 1);
    router.cnt.t_sta_s += wall_s() - ts;
    res.critical_path_s = opt.timing_hook->critical_path();
    res.worst_slack_s = opt.timing_hook->worst_slack();
  }

  if (res.success) {
    // Wire census over the final trees, deduped with the same epoch marks
    // the rip-up path uses (no hash set, no allocation).
    ++router.smark_cur;
    for (const auto& t : res.trees) {
      for (const auto& [from, to] : t.edges) {
        (void)from;
        const RrNode& n = g.node(to);
        if (n.type == RrType::kChanX || n.type == RrType::kChanY) {
          if (router.smark[to] != router.smark_cur) {
            router.smark[to] = router.smark_cur;
            ++res.wire_segments_used;
            res.total_wire_tiles += n.length;
          }
        }
      }
    }
  }
  res.counters = router.total_counters();
  // Invariant hook: a successful routing must be legal — connected trees,
  // every sink reached, no capacity overflow (NF_CHECK_INVARIANTS).
  if (res.success && verify::checks_enabled()) {
    check_routing(g, pl, res);
  }
  return res;
}

}  // namespace

RoutingResult route_all(const RrGraphView& g, const Placement& pl,
                        const RouteOptions& opt) {
  return route_session(g, pl, opt, {}, /*seeded=*/false);
}

RoutingResult route_incremental(const RrGraphView& g, const Placement& pl,
                                std::vector<RouteTree> base_trees,
                                const RouteOptions& opt) {
  if (base_trees.size() != pl.nets.size()) {
    throw std::invalid_argument(
        "route_incremental: base tree / placed net count mismatch");
  }
  RouteOptions ropt = opt;
  // Seeded routing is incremental by definition: the whole point is to
  // keep clean live trees in place.
  ropt.incremental = true;
  return route_session(g, pl, ropt, std::move(base_trees), /*seeded=*/true);
}

void check_routing(const RrGraphView& g, const Placement& pl,
                   const RoutingResult& r) {
  if (r.trees.size() != pl.nets.size()) {
    throw std::logic_error("check_routing: tree count mismatch");
  }
  std::vector<std::uint32_t> occ(g.node_count(), 0);
  std::vector<std::uint32_t> reached(g.node_count(), 0);
  std::uint32_t pass = 0;
  for (std::size_t n = 0; n < pl.nets.size(); ++n) {
    const RouteTree& t = r.trees[n];
    const BlockLoc& d = pl.locs[pl.nets[n].driver];
    if (t.source != g.site(d.x, d.y).source) {
      throw std::logic_error("check_routing: wrong source");
    }
    ++occ[t.source];
    ++pass;
    reached[t.source] = pass;
    for (const auto& [from, to] : t.edges) {
      if (reached[from] != pass) {
        throw std::logic_error("check_routing: disconnected edge");
      }
      if (reached[to] != pass) {
        reached[to] = pass;
        ++occ[to];
      }
    }
    // Every sink block's SINK node must be reached.
    for (std::size_t s : pl.nets[n].sinks) {
      const BlockLoc& l = pl.locs[s];
      if (reached[g.site(l.x, l.y).sink] != pass) {
        throw std::logic_error("check_routing: sink not reached");
      }
    }
  }
  for (RrNodeId i = 0; i < g.node_count(); ++i) {
    if (occ[i] > g.node(i).capacity) {
      throw std::logic_error("check_routing: capacity violated");
    }
  }
}

ChannelWidthResult find_min_channel_width(const ArchParams& arch,
                                          const Placement& pl,
                                          std::size_t w_hint,
                                          const RouteOptions& opt) {
  // Each probe builds its own RrGraph and Router state, so probes are
  // share-nothing and run concurrently. The probe schedule is a fixed
  // kFanout-way speculation that depends only on the search state, never
  // on the thread count, so the returned Wmin is identical at any
  // NF_THREADS setting — parallelism only accelerates the probes.
  constexpr std::size_t kFanout = 4;
  const std::size_t w_cap = std::max<std::size_t>(4, opt.max_channel_width);

  // The lookahead table is W-independent (it is built over a thin
  // canonical graph keyed by fabric size and cost profile), so build it
  // once here and hand the same table to every probe instead of paying
  // the construction inside each route_all call.
  RouteOptions probe_opt = opt;
  // Probes route with the serial per-net scheduler even when the caller
  // asked for net_parallel. The W-speculation above already saturates the
  // pool, and route_all's nested parallel_for would run serially inside a
  // concurrent probe anyway — so batching inside a probe buys zero
  // parallelism while still paying its one cost: batch members route
  // against a frozen occupancy snapshot and miss each other's usage,
  // which on small fabrics can tip a borderline width from routable to
  // not (observed as a +1 Wmin shift on tseng). Serial probes keep the
  // width search at full negotiation quality; net-level parallelism still
  // applies to direct route_all calls, which is where the threads
  // actually reach it.
  probe_opt.net_parallel = false;
  // Width probes stay congestion-only regardless of the caller's timing
  // settings: channel width is a routability question, the hook is
  // stateful (one route_all per instance) so probes could not share it,
  // and iso-delay comparisons (EXPERIMENTS.md) require timing-driven and
  // congestion-only runs to land on identical Wmin by construction.
  probe_opt.timing_driven = false;
  probe_opt.timing_hook = nullptr;
  if (probe_opt.astar_factor > 0.0 && !probe_opt.lookahead) {
    // The table builder only reads arch/nx/ny off the graph, so seed it
    // with the implicit backend — same table, none of the CSR footprint.
    ArchParams a = arch;
    a.W = std::max<std::size_t>(2, w_hint);
    const ImplicitRrGraph g(a, pl.nx, pl.ny);
    probe_opt.lookahead = std::make_shared<const RouteLookahead>(g);
  }

  auto routes_at = [&](std::size_t w) {
    ArchParams a = arch;
    a.W = std::max<std::size_t>(2, w);
    if (probe_opt.rr_backend == RrBackend::kImplicit) {
      const ImplicitRrGraph g(a, pl.nx, pl.ny);
      return route_all(g, pl, probe_opt).success;
    }
    const RrGraph g(a, pl.nx, pl.ny);
    return route_all(g, pl, probe_opt).success;
  };
  // The rounds below only ever consume probe results up to and including
  // the first success — later entries are discarded. With idle threads it
  // is still worth speculating on the whole round at once; on a serial
  // pool, evaluate lazily in order and stop at the first success instead,
  // which skips exactly the probes whose results the search would throw
  // away. Both paths therefore feed the search identical decisions, so
  // Wmin stays thread-count independent (pinned by the golden tests).
  auto probe = [&](const std::vector<std::size_t>& ws) {
    if (ThreadPool::current().thread_count() <= 1) {
      std::vector<bool> ok(ws.size(), false);
      for (std::size_t i = 0; i < ws.size(); ++i) {
        ok[i] = routes_at(ws[i]);
        if (ok[i]) break;
      }
      return ok;
    }
    return parallel_map(ws.size(),
                        [&](std::size_t i) { return routes_at(ws[i]); });
  };

  // Grow phase: probe {w, 2w} per round until one routes; failed probes
  // below the first success tighten the lower bound. Rounds are pairs —
  // not kFanout-wide — because a doubled width quadruples the routing
  // graph's memory footprint: speculating on 4w/8w builds enormous graphs
  // whose construction cost and cache pressure dwarf the round-trips a
  // wider round would save (measured on pdc: the 4-wide grow round made
  // the 8-thread search slower than the serial one).
  std::size_t lo = 2;
  std::size_t hi = 0;
  for (std::size_t w = std::max<std::size_t>(4, w_hint); hi == 0;) {
    std::vector<std::size_t> ws;
    // The hint is always probed, even when it exceeds the growth cap.
    for (std::size_t j = 0; j < 2 && (ws.empty() || w <= w_cap);
         ++j, w *= 2) {
      ws.push_back(w);
    }
    const auto ok = probe(ws);
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ok[i]) {
        hi = ws[i];
        break;
      }
      lo = ws[i] + 1;
    }
    if (hi == 0 && w > w_cap) {
      // Saturated: no probe up to the cap routed. Report the explicit
      // infeasible status instead of a garbage width — callers (run_flow,
      // route_perf, bench_check.py) propagate it.
      std::fprintf(stderr,
                   "find_min_channel_width: grow phase hit the W cap "
                   "(max_channel_width=%zu, last lower bound %zu) — design "
                   "is unroutable at any modeled width\n",
                   w_cap, lo);
      ChannelWidthResult out;
      out.feasible = false;
      out.w_cap = w_cap;
      return out;
    }
  }

  // Shrink phase: k-ary search with kFanout evenly spaced probes per
  // round (invariant: hi routes, everything below lo does not).
  while (lo < hi) {
    const std::size_t span = hi - lo;
    std::vector<std::size_t> ws;
    if (span <= kFanout) {
      for (std::size_t w = lo; w < hi; ++w) ws.push_back(w);
    } else {
      for (std::size_t j = 0; j < kFanout; ++j) {
        ws.push_back(lo + span * (j + 1) / (kFanout + 1));
      }
    }
    const auto ok = probe(ws);
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ok[i]) {
        hi = ws[i];
        break;
      }
      lo = ws[i] + 1;
    }
  }
  ChannelWidthResult out;
  out.w_min = hi;
  std::size_t w = static_cast<std::size_t>(
      std::ceil(1.2 * static_cast<double>(hi)));
  if (w % 2) ++w;  // even track counts keep INC/DEC pairs balanced
  out.w_low_stress = w;
  return out;
}

}  // namespace nemfpga
