#include "route/route.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <stdexcept>

#include "route/overuse.hpp"
#include "util/thread_pool.hpp"
#include "verify/check.hpp"

namespace nemfpga {
namespace {

double wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Allocation-free PathFinder search core. All per-net and per-sink scratch
// lives in persistent, epoch-stamped buffers owned by the Router, so the
// steady-state net loop performs zero heap allocations (buffers grow to
// their high-water mark during the first nets and are reused thereafter;
// RouteCounters::scratch_grows counts the growth events). The search is
// bit-identical to the straightforward implementation it replaces: same
// heap algorithm and comparator, same relaxation epsilons, same
// tie-breaking jitter — golden tests pin Wmin and whole-suite tree
// checksums (tests/test_route_golden.cpp).
struct Router {
  const RrGraph& g;
  const Placement& pl;
  const RouteOptions& opt;

  OveruseTracker occ;
  std::vector<float> history;
  double pres_fac;

  /// node_base_cost per node (immutable for a given graph).
  std::vector<double> base_cost;

  /// Everything the relaxation loop reads about a candidate node, packed
  /// into one 24-byte record so an edge costs one data-cache touch
  /// instead of five scattered array loads: the bounding-box coords and
  /// sink flag (immutable), a mirror of the occupancy/capacity pair
  /// (updated through inc_occ/dec_occ), and the per-iteration cost cache
  /// base * (1 + history) * jitter — leaving one multiply for the
  /// present-congestion factor instead of a type switch + hash + three
  /// multiplies per edge.
  struct HotNode {
    std::uint16_t x_lo, x_hi, y_lo, y_hi;
    std::uint16_t occ, cap;
    std::uint16_t is_sink;
    std::uint16_t pad = 0;
    double cost;
  };
  static_assert(sizeof(HotNode) == 24);
  std::vector<HotNode> hot;

  // Per-sink-search relaxation state, epoch-stamped to avoid O(V) clears
  // and packed per node for the same one-touch reason as HotNode.
  struct RelaxNode {
    double path_cost;
    std::uint32_t epoch;
    RrNodeId prev;
  };
  static_assert(sizeof(RelaxNode) == 16);
  std::vector<RelaxNode> relax;
  std::uint32_t cur_epoch = 0;

  // Per-net membership marks (tree membership, rip-up dedup, wire census),
  // epoch-stamped with their own counter.
  std::vector<std::uint32_t> mark;
  std::uint32_t mark_cur = 0;

  struct QItem {
    double cost;
    double known;
    RrNodeId node;
    bool operator>(const QItem& o) const { return cost > o.cost; }
  };

  // Reusable per-net buffers (the scratch arena).
  std::vector<QItem> heap;
  std::vector<RrNodeId> sink_nodes;
  std::vector<double> sink_keys;
  std::vector<std::uint32_t> order;
  std::vector<RrNodeId> tree_nodes;
  std::vector<std::pair<RrNodeId, RrNodeId>> path;
  std::vector<std::pair<RrNodeId, RrNodeId>> kept;

  std::size_t iteration = 1;
  RouteCounters cnt;

  explicit Router(const RrGraph& graph, const Placement& placement,
                  const RouteOptions& options)
      : g(graph), pl(placement), opt(options), occ(graph) {
    const std::size_t n = g.node_count();
    history.assign(n, 0.0f);
    base_cost.resize(n);
    hot.resize(n);
    for (RrNodeId i = 0; i < n; ++i) {
      const RrNode& nd = g.node(i);
      base_cost[i] = node_base_cost(nd);
      hot[i] = {nd.x_lo, nd.x_hi, nd.y_lo, nd.y_hi,
                0,       nd.capacity,
                static_cast<std::uint16_t>(nd.type == RrType::kSink ? 1 : 0),
                0,       0.0};
    }
    relax.assign(n, {0.0, 0, kNoRrNode});
    mark.assign(n, 0);
    pres_fac = opt.first_iter_pres_fac;
    // Warm the arena so even the first nets rarely grow it.
    heap.reserve(4096);
    sink_nodes.reserve(256);
    sink_keys.reserve(256);
    order.reserve(256);
    tree_nodes.reserve(1024);
    path.reserve(512);
    kept.reserve(512);
  }

  static double node_base_cost(const RrNode& n) {
    switch (n.type) {
      case RrType::kChanX:
      case RrType::kChanY:
        return static_cast<double>(n.length);
      case RrType::kIpin:
        return 0.95;  // slight pull toward finishing
      case RrType::kSink:
        return 0.0;
      default:
        return 1.0;
    }
  }

  /// Occupancy changes go through these so the HotNode mirror and the
  /// incremental overuse tracker stay in lock step.
  void inc_occ(RrNodeId id) {
    occ.inc(id);
    ++hot[id].occ;
  }
  void dec_occ(RrNodeId id) {
    occ.dec(id);
    --hot[id].occ;
  }

  /// Rebuild the per-iteration node-cost cache. The small deterministic
  /// jitter breaks the lock-step oscillations PathFinder can fall into
  /// when two nets see identical costs for each other's resources.
  void begin_iteration(std::size_t iter) {
    iteration = iter;
    const std::uint32_t salt = static_cast<std::uint32_t>(iter) * 40503u;
    const std::size_t n = hot.size();
    for (RrNodeId i = 0; i < n; ++i) {
      const std::uint32_t h = (i * 2654435761u) ^ salt;
      const double jitter =
          1.0 + 0.02 * static_cast<double>((h >> 16) & 0xff) / 255.0;
      hot[i].cost =
          (base_cost[i] * (1.0 + static_cast<double>(history[i]))) * jitter;
    }
  }

  double congestion_cost(const HotNode& hn) const {
    const int over =
        static_cast<int>(hn.occ) + 1 - static_cast<int>(hn.cap);
    if (over <= 0) return hn.cost;
    return hn.cost * (1.0 + over * pres_fac);
  }

  /// Manhattan-distance lookahead toward a target node, in expected base
  /// cost (distance scaled by ~1 per tile traversed).
  double heuristic(RrNodeId from, RrNodeId to) const {
    const HotNode& b = hot[to];
    return heuristic_to(from, b.x_lo, b.x_hi, b.y_lo, b.y_hi);
  }

  /// Same lookahead with the target's bounding box hoisted once per
  /// search instead of re-loaded per edge.
  double heuristic_to(RrNodeId from, int tx_lo, int tx_hi, int ty_lo,
                      int ty_hi) const {
    return heuristic_from(hot[from], tx_lo, tx_hi, ty_lo, ty_hi);
  }

  /// Lookahead from a HotNode already in hand (the relaxation loop has
  /// just touched it — no second lookup).
  double heuristic_from(const HotNode& a, int tx_lo, int tx_hi, int ty_lo,
                        int ty_hi) const {
    const auto clampdist = [](int lo1, int hi1, int lo2, int hi2) {
      if (hi1 < lo2) return lo2 - hi1;
      if (hi2 < lo1) return lo1 - hi2;
      return 0;
    };
    const int dx = clampdist(a.x_lo, a.x_hi, tx_lo, tx_hi);
    const int dy = clampdist(a.y_lo, a.y_hi, ty_lo, ty_hi);
    return opt.astar_fac * static_cast<double>(dx + dy);
  }

  static void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p);
#else
    (void)p;
#endif
  }

  // Binary min-heap over the persistent buffer — the exact algorithm
  // std::priority_queue runs, without its per-search container churn.
  // (A 4-ary hole-sifting variant was measured here; it resolves
  // exact-cost ties in a different order than std::pop_heap, which
  // perturbs the routing and violates the bit-identity contract the
  // golden tests pin, so the std algorithms stay.)
  void heap_push(QItem item) {
    heap.push_back(item);
    std::push_heap(heap.begin(), heap.end(), std::greater<>{});
    ++cnt.heap_pushes;
  }
  QItem heap_pop() {
    std::pop_heap(heap.begin(), heap.end(), std::greater<>{});
    const QItem item = heap.back();
    heap.pop_back();
    ++cnt.heap_pops;
    return item;
  }

  std::size_t scratch_capacity() const {
    return heap.capacity() + sink_nodes.capacity() + sink_keys.capacity() +
           order.capacity() + tree_nodes.capacity() + path.capacity() +
           kept.capacity();
  }

  /// Route one net; tree written into `out`. `out` may arrive pre-seeded
  /// with a congestion-free partial tree (prune_ripup) whose nodes still
  /// hold occupancy; a fresh/empty `out` routes from scratch. Returns
  /// false if any sink was unreachable (graph disconnection — treated as
  /// hard failure).
  bool route_net(const PlacedNet& net, RouteTree& out,
                 std::size_t extra_bb = 0) {
    const std::size_t cap_before = scratch_capacity();
    ++cnt.nets_routed;
    // Routes outside the net bounding box are rare but legal (sparse track
    // connectivity can force a detour); retry unconstrained before giving
    // up.
    bool ok = route_net_bb(net, out, opt.bb_margin + extra_bb);
    if (!ok) {
      out = RouteTree{};
      ok = route_net_bb(net, out, g.nx() + g.ny());
    }
    if (scratch_capacity() != cap_before) ++cnt.scratch_grows;
    return ok;
  }

  bool route_net_bb(const PlacedNet& net, RouteTree& out,
                    std::size_t bb_margin) {
    const BlockLoc& dloc = pl.locs[net.driver];
    const RrNodeId source = g.site(dloc.x, dloc.y).source;
    out.source = source;
    out.sinks.clear();

    // Net bounding box (+margin) restricts expansion.
    int x_lo = static_cast<int>(dloc.x), x_hi = x_lo;
    int y_lo = static_cast<int>(dloc.y), y_hi = y_lo;
    sink_nodes.clear();
    for (std::size_t s : net.sinks) {
      const BlockLoc& l = pl.locs[s];
      sink_nodes.push_back(g.site(l.x, l.y).sink);
      x_lo = std::min(x_lo, static_cast<int>(l.x));
      x_hi = std::max(x_hi, static_cast<int>(l.x));
      y_lo = std::min(y_lo, static_cast<int>(l.y));
      y_hi = std::max(y_hi, static_cast<int>(l.y));
    }
    const int m = static_cast<int>(bb_margin);
    x_lo -= m;
    x_hi += m;
    y_lo -= m;
    y_hi += m;
    auto in_bb = [&](const HotNode& n) {
      return static_cast<int>(n.x_hi) >= x_lo &&
             static_cast<int>(n.x_lo) <= x_hi &&
             static_cast<int>(n.y_hi) >= y_lo &&
             static_cast<int>(n.y_lo) <= y_hi;
    };

    // Sort sinks near-to-far from the driver. The keys are evaluated once
    // per sink up front — not O(n log n) times inside the comparator.
    order.resize(sink_nodes.size());
    sink_keys.resize(sink_nodes.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) {
      order[i] = i;
      sink_keys[i] = heuristic(source, sink_nodes[i]);
    }
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return sink_keys[a] < sink_keys[b];
              });

    // Tree membership via epoch marks; seed from any pre-kept edges.
    ++mark_cur;
    tree_nodes.clear();
    tree_nodes.push_back(source);
    mark[source] = mark_cur;
    for (const auto& [from, to] : out.edges) {
      (void)from;
      if (mark[to] != mark_cur) {
        mark[to] = mark_cur;
        tree_nodes.push_back(to);
      }
    }

    for (std::uint32_t oi : order) {
      const RrNodeId target = sink_nodes[oi];
      if (mark[target] == mark_cur) {
        // Another sink block shares this SINK node; already reached.
        out.sinks.push_back(target);
        continue;
      }
      ++cur_epoch;
      ++cnt.sink_searches;
      const HotNode& tn = hot[target];
      const int tx_lo = tn.x_lo, tx_hi = tn.x_hi;
      const int ty_lo = tn.y_lo, ty_hi = tn.y_hi;
      heap.clear();
      for (RrNodeId n : tree_nodes) {
        relax[n] = {0.0, cur_epoch, kNoRrNode};
        heap_push({heuristic_to(n, tx_lo, tx_hi, ty_lo, ty_hi), 0.0, n});
      }
      bool found = false;
      while (!heap.empty()) {
        const QItem item = heap_pop();
        const RrNodeId u = item.node;
        if (relax[u].epoch == cur_epoch &&
            item.known > relax[u].path_cost + 1e-9) {
          continue;  // stale entry
        }
        ++cnt.nodes_expanded;
        if (u == target) {
          found = true;
          break;
        }
        const std::span<const RrEdge> es = g.edges(u);
        for (std::size_t k = 0; k < es.size(); ++k) {
          if (k + 4 < es.size()) prefetch(&hot[es[k + 4].to]);
          const RrNodeId v = es[k].to;
          const HotNode& vn = hot[v];
          if (!in_bb(vn)) continue;
          if (vn.is_sink && v != target) continue;
          const double new_cost = item.known + congestion_cost(vn);
          RelaxNode& rn = relax[v];
          if (rn.epoch != cur_epoch || new_cost < rn.path_cost - 1e-9) {
            rn = {new_cost, cur_epoch, u};
            heap_push({new_cost + heuristic_from(vn, tx_lo, tx_hi, ty_lo,
                                                 ty_hi),
                       new_cost, v});
          }
        }
      }
      if (!found) {
        // Release the partially-built tree (source has no occupancy yet).
        for (std::size_t i = 1; i < tree_nodes.size(); ++i) {
          dec_occ(tree_nodes[i]);
        }
        return false;
      }
      // Backtrace; new nodes join the tree with occupancy.
      path.clear();
      RrNodeId n = target;
      while (relax[n].prev != kNoRrNode) {
        path.emplace_back(relax[n].prev, n);
        n = relax[n].prev;
      }
      for (auto it = path.rbegin(); it != path.rend(); ++it) {
        out.edges.push_back(*it);
        if (mark[it->second] != mark_cur) {
          mark[it->second] = mark_cur;
          tree_nodes.push_back(it->second);
          inc_occ(it->second);
        }
      }
      out.sinks.push_back(target);
    }
    inc_occ(source);
    return true;
  }

  /// Release a whole tree's occupancy.
  void rip_up(const RouteTree& t) {
    if (t.source == kNoRrNode) return;
    dec_occ(t.source);
    ++mark_cur;
    for (const auto& [from, to] : t.edges) {
      (void)from;
      if (mark[to] != mark_cur) {
        mark[to] = mark_cur;
        dec_occ(to);
      }
    }
  }

  /// Partial rip-up: keep the maximal source-connected subtree that is
  /// free of overused nodes *and* still feeds at least one sink (stub
  /// branches whose sinks were congested away release their occupancy
  /// too, or they would hoard capacity forever). Kept nodes retain
  /// occupancy; `t` becomes the seed tree route_net rebuilds from. The
  /// source's own occupancy is released because route_net_bb re-takes it
  /// on success.
  void prune_tree(const PlacedNet& net, RouteTree& t) {
    if (t.source == kNoRrNode) return;
    // Pass 1 (forward, parent-before-child): clean, source-connected.
    kept.clear();
    ++mark_cur;
    const std::uint32_t keep_m = mark_cur;
    if (!occ.overused(t.source)) mark[t.source] = keep_m;
    for (const auto& e : t.edges) {
      if (mark[e.first] == keep_m && !occ.overused(e.second)) {
        mark[e.second] = keep_m;
        kept.push_back(e);
      } else {
        dec_occ(e.second);
      }
    }
    // Pass 2 (reverse): drop branches that reach none of the net's sinks.
    ++mark_cur;
    const std::uint32_t useful_m = mark_cur;
    for (std::size_t s : net.sinks) {
      const BlockLoc& l = pl.locs[s];
      const RrNodeId sk = g.site(l.x, l.y).sink;
      if (mark[sk] == keep_m) mark[sk] = useful_m;
    }
    path.clear();  // reversed survivors
    for (auto it = kept.rbegin(); it != kept.rend(); ++it) {
      if (mark[it->second] == useful_m) {
        mark[it->first] = useful_m;
        path.push_back(*it);
      } else {
        dec_occ(it->second);
      }
    }
    dec_occ(t.source);
    t.edges.assign(path.rbegin(), path.rend());
    t.sinks.clear();
  }

  void update_history() {
    occ.for_each_overused([this](RrNodeId i, int over) {
      history[i] += static_cast<float>(opt.history_fac * over);
    });
  }
};

}  // namespace

RoutingResult route_all(const RrGraph& g, const Placement& pl,
                        const RouteOptions& opt) {
  Router router(g, pl, opt);
  RoutingResult res;
  res.trees.assign(pl.nets.size(), {});
  std::size_t best_overuse = static_cast<std::size_t>(-1);
  std::size_t best_iter = 0;

  // A net only needs rerouting while its tree touches an overused node —
  // a per-node flag lookup against the incremental overuse tracker.
  auto touches_overuse = [&](const RouteTree& t) {
    if (t.source == kNoRrNode) return true;
    if (router.occ.overused(t.source)) return true;
    for (const auto& [from, to] : t.edges) {
      (void)from;
      if (router.occ.overused(to)) return true;
    }
    return false;
  };

  // Nets that stay congested get a progressively wider routing window:
  // the bounding-box constraint can hide every alternative to a contended
  // resource, freezing a conflict no cost growth can break.
  std::vector<std::size_t> extra_bb(pl.nets.size(), 0);

  for (std::size_t iter = 1; iter <= opt.max_iterations; ++iter) {
    res.iterations = iter;
    double t0 = wall_s();
    router.begin_iteration(iter);
    router.cnt.t_bookkeep_s += wall_s() - t0;
    t0 = wall_s();
    for (std::size_t n = 0; n < pl.nets.size(); ++n) {
      if (iter > 1) {
        if (opt.incremental) {
          // Congestion fully cleared mid-iteration: every remaining net
          // would fail touches_overuse anyway.
          if (router.occ.overused_count() == 0) break;
          if (!touches_overuse(res.trees[n])) continue;
        }
        ++router.cnt.nets_rerouted;
        if (opt.prune_ripup) {
          router.prune_tree(pl.nets[n], res.trees[n]);
        } else {
          router.rip_up(res.trees[n]);
          res.trees[n] = RouteTree{};
        }
        if (iter > 12) {
          extra_bb[n] = std::min<std::size_t>(extra_bb[n] + 2,
                                              g.nx() + g.ny());
        }
      }
      if (!router.route_net(pl.nets[n], res.trees[n], extra_bb[n])) {
        // Hard disconnection — no amount of iteration will fix it.
        res.success = false;
        res.overused_nodes = router.occ.overused_count();
        router.cnt.t_search_s += wall_s() - t0;
        res.counters = router.cnt;
        return res;
      }
    }
    router.cnt.t_search_s += wall_s() - t0;
    res.overused_nodes = router.occ.overused_count();
    if (std::getenv("NF_ROUTE_DEBUG")) {
      std::fprintf(stderr, "iter %zu overused=%zu pres=%g\n", iter,
                   res.overused_nodes, router.pres_fac);
      for (RrNodeId i = 0; i < g.node_count(); ++i) {
        if (router.occ.overused(i)) {
          std::fprintf(stderr, "  node %u type=%d occ=%d cap=%d\n", i,
                       static_cast<int>(g.node(i).type), router.occ.occ(i),
                       router.occ.capacity(i));
        }
      }
    }
    if (res.overused_nodes == 0) {
      res.success = true;
      break;
    }
    // Plateau detection: large congestion that stops improving will not
    // resolve; bail out early so channel-width searches stay fast. Small
    // residual overuse (a handful of nodes) is left to the growing
    // present-cost factor, which routinely clears it late.
    if (res.overused_nodes < best_overuse) {
      best_overuse = res.overused_nodes;
      best_iter = iter;
    } else if (best_overuse > 20 && iter > best_iter + 15 &&
               res.overused_nodes > best_overuse * 95 / 100) {
      break;
    }
    t0 = wall_s();
    router.update_history();
    router.cnt.t_bookkeep_s += wall_s() - t0;
    router.pres_fac =
        std::min(router.pres_fac * opt.pres_fac_mult, opt.pres_fac_max);
  }

  if (res.success) {
    // Wire census over the final trees, deduped with the same epoch marks
    // the per-net loop uses (no hash set, no allocation).
    ++router.mark_cur;
    for (const auto& t : res.trees) {
      for (const auto& [from, to] : t.edges) {
        (void)from;
        const RrNode& n = g.node(to);
        if (n.type == RrType::kChanX || n.type == RrType::kChanY) {
          if (router.mark[to] != router.mark_cur) {
            router.mark[to] = router.mark_cur;
            ++res.wire_segments_used;
            res.total_wire_tiles += n.length;
          }
        }
      }
    }
  }
  res.counters = router.cnt;
  // Invariant hook: a successful routing must be legal — connected trees,
  // every sink reached, no capacity overflow (NF_CHECK_INVARIANTS).
  if (res.success && verify::checks_enabled()) {
    check_routing(g, pl, res);
  }
  return res;
}

void check_routing(const RrGraph& g, const Placement& pl,
                   const RoutingResult& r) {
  if (r.trees.size() != pl.nets.size()) {
    throw std::logic_error("check_routing: tree count mismatch");
  }
  std::vector<std::uint32_t> occ(g.node_count(), 0);
  std::vector<std::uint32_t> reached(g.node_count(), 0);
  std::uint32_t pass = 0;
  for (std::size_t n = 0; n < pl.nets.size(); ++n) {
    const RouteTree& t = r.trees[n];
    const BlockLoc& d = pl.locs[pl.nets[n].driver];
    if (t.source != g.site(d.x, d.y).source) {
      throw std::logic_error("check_routing: wrong source");
    }
    ++occ[t.source];
    ++pass;
    reached[t.source] = pass;
    for (const auto& [from, to] : t.edges) {
      if (reached[from] != pass) {
        throw std::logic_error("check_routing: disconnected edge");
      }
      if (reached[to] != pass) {
        reached[to] = pass;
        ++occ[to];
      }
    }
    // Every sink block's SINK node must be reached.
    for (std::size_t s : pl.nets[n].sinks) {
      const BlockLoc& l = pl.locs[s];
      if (reached[g.site(l.x, l.y).sink] != pass) {
        throw std::logic_error("check_routing: sink not reached");
      }
    }
  }
  for (RrNodeId i = 0; i < g.node_count(); ++i) {
    if (occ[i] > g.node(i).capacity) {
      throw std::logic_error("check_routing: capacity violated");
    }
  }
}

ChannelWidthResult find_min_channel_width(const ArchParams& arch,
                                          const Placement& pl,
                                          std::size_t w_hint,
                                          const RouteOptions& opt) {
  // Each probe builds its own RrGraph and Router state, so probes are
  // share-nothing and run concurrently. The probe schedule is a fixed
  // kFanout-way speculation that depends only on the search state, never
  // on the thread count, so the returned Wmin is identical at any
  // NF_THREADS setting — parallelism only accelerates the probes.
  constexpr std::size_t kFanout = 4;
  constexpr std::size_t kMaxW = 1024;

  auto routes_at = [&](std::size_t w) {
    ArchParams a = arch;
    a.W = std::max<std::size_t>(2, w);
    const RrGraph g(a, pl.nx, pl.ny);
    return route_all(g, pl, opt).success;
  };
  // The rounds below only ever consume probe results up to and including
  // the first success — later entries are discarded. With idle threads it
  // is still worth speculating on the whole round at once; on a serial
  // pool, evaluate lazily in order and stop at the first success instead,
  // which skips exactly the probes whose results the search would throw
  // away. Both paths therefore feed the search identical decisions, so
  // Wmin stays thread-count independent (pinned by the golden tests).
  auto probe = [&](const std::vector<std::size_t>& ws) {
    if (ThreadPool::current().thread_count() <= 1) {
      std::vector<bool> ok(ws.size(), false);
      for (std::size_t i = 0; i < ws.size(); ++i) {
        ok[i] = routes_at(ws[i]);
        if (ok[i]) break;
      }
      return ok;
    }
    return parallel_map(ws.size(),
                        [&](std::size_t i) { return routes_at(ws[i]); });
  };

  // Grow phase: speculatively probe {w, 2w, 4w, 8w} per round until one
  // routes; failed probes below the first success tighten the lower bound.
  std::size_t lo = 2;
  std::size_t hi = 0;
  for (std::size_t w = std::max<std::size_t>(4, w_hint); hi == 0;) {
    std::vector<std::size_t> ws;
    // The hint is always probed, even when it exceeds the growth cap.
    for (std::size_t j = 0; j < kFanout && (ws.empty() || w <= kMaxW);
         ++j, w *= 2) {
      ws.push_back(w);
    }
    const auto ok = probe(ws);
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ok[i]) {
        hi = ws[i];
        break;
      }
      lo = ws[i] + 1;
    }
    if (hi == 0 && w > kMaxW) {
      std::fprintf(stderr,
                   "find_min_channel_width: grow phase hit the W cap "
                   "(kMaxW=%zu, last lower bound %zu) — design is "
                   "unroutable at any modeled width\n",
                   kMaxW, lo);
      throw std::runtime_error("find_min_channel_width: unroutable design");
    }
  }

  // Shrink phase: k-ary search with kFanout evenly spaced probes per
  // round (invariant: hi routes, everything below lo does not).
  while (lo < hi) {
    const std::size_t span = hi - lo;
    std::vector<std::size_t> ws;
    if (span <= kFanout) {
      for (std::size_t w = lo; w < hi; ++w) ws.push_back(w);
    } else {
      for (std::size_t j = 0; j < kFanout; ++j) {
        ws.push_back(lo + span * (j + 1) / (kFanout + 1));
      }
    }
    const auto ok = probe(ws);
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ok[i]) {
        hi = ws[i];
        break;
      }
      lo = ws[i] + 1;
    }
  }
  ChannelWidthResult out;
  out.w_min = hi;
  std::size_t w = static_cast<std::size_t>(
      std::ceil(1.2 * static_cast<double>(hi)));
  if (w % 2) ++w;  // even track counts keep INC/DEC pairs balanced
  out.w_low_stress = w;
  return out;
}

}  // namespace nemfpga
