#include "route/route.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <queue>
#include <stdexcept>
#include <unordered_set>

#include "util/thread_pool.hpp"

namespace nemfpga {
namespace {

struct Router {
  const RrGraph& g;
  const Placement& pl;
  const RouteOptions& opt;

  std::vector<std::uint16_t> occ;
  std::vector<float> history;
  double pres_fac;

  // Per-net-search scratch, epoch-stamped to avoid O(V) clears.
  std::vector<std::uint32_t> epoch;
  std::vector<double> path_cost;
  std::vector<RrNodeId> prev;
  std::uint32_t cur_epoch = 0;
  std::size_t iteration = 1;

  explicit Router(const RrGraph& graph, const Placement& placement,
                  const RouteOptions& options)
      : g(graph), pl(placement), opt(options) {
    occ.assign(g.node_count(), 0);
    history.assign(g.node_count(), 0.0f);
    epoch.assign(g.node_count(), 0);
    path_cost.assign(g.node_count(), 0.0);
    prev.assign(g.node_count(), kNoRrNode);
    pres_fac = opt.first_iter_pres_fac;
  }

  double node_base_cost(const RrNode& n) const {
    switch (n.type) {
      case RrType::kChanX:
      case RrType::kChanY:
        return static_cast<double>(n.length);
      case RrType::kIpin:
        return 0.95;  // slight pull toward finishing
      case RrType::kSink:
        return 0.0;
      default:
        return 1.0;
    }
  }

  double congestion_cost(RrNodeId id) const {
    const RrNode& n = g.node(id);
    const double over =
        std::max(0, static_cast<int>(occ[id]) + 1 - static_cast<int>(n.capacity));
    const double pres = 1.0 + over * pres_fac;
    // Small deterministic per-iteration jitter breaks the lock-step
    // oscillations PathFinder can fall into when two nets see identical
    // costs for each other's resources.
    const std::uint32_t h =
        (id * 2654435761u) ^ (static_cast<std::uint32_t>(iteration) * 40503u);
    const double jitter = 1.0 + 0.02 * static_cast<double>((h >> 16) & 0xff) / 255.0;
    return node_base_cost(n) * pres * (1.0 + history[id]) * jitter;
  }

  /// Manhattan-distance lookahead toward a target node, in expected base
  /// cost (distance scaled by ~1 per tile traversed).
  double heuristic(RrNodeId from, RrNodeId to) const {
    const RrNode& a = g.node(from);
    const RrNode& b = g.node(to);
    const auto clampdist = [](int lo1, int hi1, int lo2, int hi2) {
      if (hi1 < lo2) return lo2 - hi1;
      if (hi2 < lo1) return lo1 - hi2;
      return 0;
    };
    const int dx = clampdist(a.x_lo, a.x_hi, b.x_lo, b.x_hi);
    const int dy = clampdist(a.y_lo, a.y_hi, b.y_lo, b.y_hi);
    return opt.astar_fac * static_cast<double>(dx + dy);
  }

  struct QItem {
    double cost;
    double known;
    RrNodeId node;
    bool operator>(const QItem& o) const { return cost > o.cost; }
  };

  /// Route one net; tree written into `out`. Returns false if any sink was
  /// unreachable (graph disconnection — treated as hard failure).
  bool route_net(const PlacedNet& net, RouteTree& out,
                 std::size_t extra_bb = 0) {
    // Routes outside the net bounding box are rare but legal (sparse track
    // connectivity can force a detour); retry unconstrained before giving up.
    if (route_net_bb(net, out, opt.bb_margin + extra_bb)) return true;
    out = RouteTree{};
    return route_net_bb(net, out, g.nx() + g.ny());
  }

  bool route_net_bb(const PlacedNet& net, RouteTree& out,
                    std::size_t bb_margin) {
    const BlockLoc& dloc = pl.locs[net.driver];
    const RrNodeId source = g.site(dloc.x, dloc.y).source;
    out.source = source;
    out.edges.clear();
    out.sinks.clear();

    // Net bounding box (+margin) restricts expansion.
    int x_lo = static_cast<int>(dloc.x), x_hi = x_lo;
    int y_lo = static_cast<int>(dloc.y), y_hi = y_lo;
    std::vector<RrNodeId> sink_nodes;
    sink_nodes.reserve(net.sinks.size());
    for (std::size_t s : net.sinks) {
      const BlockLoc& l = pl.locs[s];
      sink_nodes.push_back(g.site(l.x, l.y).sink);
      x_lo = std::min(x_lo, static_cast<int>(l.x));
      x_hi = std::max(x_hi, static_cast<int>(l.x));
      y_lo = std::min(y_lo, static_cast<int>(l.y));
      y_hi = std::max(y_hi, static_cast<int>(l.y));
    }
    const int m = static_cast<int>(bb_margin);
    x_lo -= m;
    x_hi += m;
    y_lo -= m;
    y_hi += m;
    auto in_bb = [&](const RrNode& n) {
      return static_cast<int>(n.x_hi) >= x_lo &&
             static_cast<int>(n.x_lo) <= x_hi &&
             static_cast<int>(n.y_hi) >= y_lo &&
             static_cast<int>(n.y_lo) <= y_hi;
    };

    // Sort sinks near-to-far from the driver (cheap heuristic order).
    std::vector<std::size_t> order(sink_nodes.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return heuristic(source, sink_nodes[a]) < heuristic(source, sink_nodes[b]);
    });

    std::vector<RrNodeId> tree_nodes{source};
    std::unordered_set<RrNodeId> in_tree{source};

    for (std::size_t oi : order) {
      const RrNodeId target = sink_nodes[oi];
      if (in_tree.contains(target)) {
        // Another sink block shares this SINK node; already reached.
        out.sinks.push_back(target);
        continue;
      }
      ++cur_epoch;
      std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
      for (RrNodeId n : tree_nodes) {
        epoch[n] = cur_epoch;
        path_cost[n] = 0.0;
        prev[n] = kNoRrNode;
        pq.push({heuristic(n, target), 0.0, n});
      }
      bool found = false;
      while (!pq.empty()) {
        const QItem item = pq.top();
        pq.pop();
        const RrNodeId u = item.node;
        if (epoch[u] == cur_epoch &&
            item.known > path_cost[u] + 1e-9) {
          continue;  // stale entry
        }
        if (u == target) {
          found = true;
          break;
        }
        for (const RrEdge& e : g.edges(u)) {
          const RrNode& vn = g.node(e.to);
          if (!in_bb(vn)) continue;
          if (vn.type == RrType::kSink && e.to != target) continue;
          const double new_cost = item.known + congestion_cost(e.to);
          if (epoch[e.to] != cur_epoch ||
              new_cost < path_cost[e.to] - 1e-9) {
            epoch[e.to] = cur_epoch;
            path_cost[e.to] = new_cost;
            prev[e.to] = u;
            pq.push({new_cost + heuristic(e.to, target), new_cost, e.to});
          }
        }
      }
      if (!found) {
        // Release the partially-built tree (source has no occupancy yet).
        for (std::size_t i = 1; i < tree_nodes.size(); ++i) {
          --occ[tree_nodes[i]];
        }
        return false;
      }
      // Backtrace; new nodes join the tree with occupancy.
      std::vector<std::pair<RrNodeId, RrNodeId>> path;
      RrNodeId n = target;
      while (prev[n] != kNoRrNode) {
        path.emplace_back(prev[n], n);
        n = prev[n];
      }
      for (auto it = path.rbegin(); it != path.rend(); ++it) {
        out.edges.push_back(*it);
        if (in_tree.insert(it->second).second) {
          tree_nodes.push_back(it->second);
          ++occ[it->second];
        }
      }
      out.sinks.push_back(target);
    }
    ++occ[source];
    return true;
  }

  void rip_up(const RouteTree& t) {
    if (t.source == kNoRrNode) return;
    --occ[t.source];
    std::unordered_set<RrNodeId> seen;
    for (const auto& [from, to] : t.edges) {
      (void)from;
      if (seen.insert(to).second) --occ[to];
    }
  }

  std::size_t count_overuse() const {
    std::size_t n_over = 0;
    for (RrNodeId i = 0; i < g.node_count(); ++i) {
      if (occ[i] > g.node(i).capacity) ++n_over;
    }
    return n_over;
  }

  void update_history() {
    for (RrNodeId i = 0; i < g.node_count(); ++i) {
      const int over =
          static_cast<int>(occ[i]) - static_cast<int>(g.node(i).capacity);
      if (over > 0) {
        history[i] += static_cast<float>(opt.history_fac * over);
      }
    }
  }
};

}  // namespace

RoutingResult route_all(const RrGraph& g, const Placement& pl,
                        const RouteOptions& opt) {
  Router router(g, pl, opt);
  RoutingResult res;
  res.trees.assign(pl.nets.size(), {});
  std::size_t best_overuse = static_cast<std::size_t>(-1);
  std::size_t best_iter = 0;

  // A net only needs rerouting while its tree touches an overused node.
  auto touches_overuse = [&](const RouteTree& t) {
    if (t.source == kNoRrNode) return true;
    if (router.occ[t.source] > g.node(t.source).capacity) return true;
    for (const auto& [from, to] : t.edges) {
      (void)from;
      if (router.occ[to] > g.node(to).capacity) return true;
    }
    return false;
  };

  // Nets that stay congested get a progressively wider routing window:
  // the bounding-box constraint can hide every alternative to a contended
  // resource, freezing a conflict no cost growth can break.
  std::vector<std::size_t> extra_bb(pl.nets.size(), 0);

  for (std::size_t iter = 1; iter <= opt.max_iterations; ++iter) {
    res.iterations = iter;
    router.iteration = iter;
    for (std::size_t n = 0; n < pl.nets.size(); ++n) {
      if (iter > 1) {
        if (opt.incremental && !touches_overuse(res.trees[n])) continue;
        router.rip_up(res.trees[n]);
        if (iter > 12) {
          extra_bb[n] = std::min<std::size_t>(extra_bb[n] + 2,
                                              g.nx() + g.ny());
        }
      }
      res.trees[n] = RouteTree{};
      if (!router.route_net(pl.nets[n], res.trees[n], extra_bb[n])) {
        // Hard disconnection — no amount of iteration will fix it.
        res.success = false;
        res.overused_nodes = router.count_overuse();
        return res;
      }
    }
    res.overused_nodes = router.count_overuse();
    if (std::getenv("NF_ROUTE_DEBUG")) {
      std::fprintf(stderr, "iter %zu overused=%zu pres=%g\n", iter,
                   res.overused_nodes, router.pres_fac);
      for (RrNodeId i = 0; i < g.node_count(); ++i) {
        if (router.occ[i] > g.node(i).capacity) {
          std::fprintf(stderr, "  node %u type=%d occ=%d cap=%d\n", i,
                       static_cast<int>(g.node(i).type), router.occ[i],
                       g.node(i).capacity);
        }
      }
    }
    if (res.overused_nodes == 0) {
      res.success = true;
      break;
    }
    // Plateau detection: large congestion that stops improving will not
    // resolve; bail out early so channel-width searches stay fast. Small
    // residual overuse (a handful of nodes) is left to the growing
    // present-cost factor, which routinely clears it late.
    if (res.overused_nodes < best_overuse) {
      best_overuse = res.overused_nodes;
      best_iter = iter;
    } else if (best_overuse > 20 && iter > best_iter + 15 &&
               res.overused_nodes > best_overuse * 95 / 100) {
      break;
    }
    router.update_history();
    router.pres_fac =
        std::min(router.pres_fac * opt.pres_fac_mult, opt.pres_fac_max);
  }

  if (res.success) {
    std::unordered_set<RrNodeId> wires;
    for (const auto& t : res.trees) {
      for (const auto& [from, to] : t.edges) {
        (void)from;
        const RrNode& n = g.node(to);
        if (n.type == RrType::kChanX || n.type == RrType::kChanY) {
          if (wires.insert(to).second) {
            ++res.wire_segments_used;
            res.total_wire_tiles += n.length;
          }
        }
      }
    }
  }
  return res;
}

void check_routing(const RrGraph& g, const Placement& pl,
                   const RoutingResult& r) {
  if (r.trees.size() != pl.nets.size()) {
    throw std::logic_error("check_routing: tree count mismatch");
  }
  std::vector<std::uint32_t> occ(g.node_count(), 0);
  for (std::size_t n = 0; n < pl.nets.size(); ++n) {
    const RouteTree& t = r.trees[n];
    const BlockLoc& d = pl.locs[pl.nets[n].driver];
    if (t.source != g.site(d.x, d.y).source) {
      throw std::logic_error("check_routing: wrong source");
    }
    ++occ[t.source];
    std::unordered_set<RrNodeId> reached{t.source};
    for (const auto& [from, to] : t.edges) {
      if (!reached.contains(from)) {
        throw std::logic_error("check_routing: disconnected edge");
      }
      if (reached.insert(to).second) ++occ[to];
    }
    // Every sink block's SINK node must be reached.
    for (std::size_t s : pl.nets[n].sinks) {
      const BlockLoc& l = pl.locs[s];
      if (!reached.contains(g.site(l.x, l.y).sink)) {
        throw std::logic_error("check_routing: sink not reached");
      }
    }
  }
  for (RrNodeId i = 0; i < g.node_count(); ++i) {
    if (occ[i] > g.node(i).capacity) {
      throw std::logic_error("check_routing: capacity violated");
    }
  }
}

ChannelWidthResult find_min_channel_width(const ArchParams& arch,
                                          const Placement& pl,
                                          std::size_t w_hint,
                                          const RouteOptions& opt) {
  // Each probe builds its own RrGraph and Router state, so probes are
  // share-nothing and run concurrently. The probe schedule is a fixed
  // kFanout-way speculation that depends only on the search state, never
  // on the thread count, so the returned Wmin is identical at any
  // NF_THREADS setting — parallelism only accelerates the probes.
  constexpr std::size_t kFanout = 4;
  constexpr std::size_t kMaxW = 1024;

  auto routes_at = [&](std::size_t w) {
    ArchParams a = arch;
    a.W = std::max<std::size_t>(2, w);
    const RrGraph g(a, pl.nx, pl.ny);
    return route_all(g, pl, opt).success;
  };
  auto probe = [&](const std::vector<std::size_t>& ws) {
    return parallel_map(ws.size(),
                        [&](std::size_t i) { return routes_at(ws[i]); });
  };

  // Grow phase: speculatively probe {w, 2w, 4w, 8w} per round until one
  // routes; failed probes below the first success tighten the lower bound.
  std::size_t lo = 2;
  std::size_t hi = 0;
  for (std::size_t w = std::max<std::size_t>(4, w_hint); hi == 0;) {
    std::vector<std::size_t> ws;
    // The hint is always probed, even when it exceeds the growth cap.
    for (std::size_t j = 0; j < kFanout && (ws.empty() || w <= kMaxW);
         ++j, w *= 2) {
      ws.push_back(w);
    }
    const auto ok = probe(ws);
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ok[i]) {
        hi = ws[i];
        break;
      }
      lo = ws[i] + 1;
    }
    if (hi == 0 && w > kMaxW) {
      throw std::runtime_error("find_min_channel_width: unroutable design");
    }
  }

  // Shrink phase: k-ary search with kFanout evenly spaced probes per
  // round (invariant: hi routes, everything below lo does not).
  while (lo < hi) {
    const std::size_t span = hi - lo;
    std::vector<std::size_t> ws;
    if (span <= kFanout) {
      for (std::size_t w = lo; w < hi; ++w) ws.push_back(w);
    } else {
      for (std::size_t j = 0; j < kFanout; ++j) {
        ws.push_back(lo + span * (j + 1) / (kFanout + 1));
      }
    }
    const auto ok = probe(ws);
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ok[i]) {
        hi = ws[i];
        break;
      }
      lo = ws[i] + 1;
    }
  }
  ChannelWidthResult out;
  out.w_min = hi;
  std::size_t w = static_cast<std::size_t>(
      std::ceil(1.2 * static_cast<double>(hi)));
  if (w % 2) ++w;  // even track counts keep INC/DEC pairs balanced
  out.w_low_stress = w;
  return out;
}

}  // namespace nemfpga
