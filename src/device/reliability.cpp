#include "device/reliability.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nemfpga {
namespace {

/// Weibull scale parameter lambda such that the median equals m.
double weibull_scale(const WearModel& model) {
  return model.median_cycles_to_failure /
         std::pow(std::log(2.0), 1.0 / model.weibull_shape);
}

}  // namespace

WearState wear_after(const RelayDesign& design, const WearModel& model,
                     double cycles) {
  if (cycles < 0.0) throw std::invalid_argument("wear_after: negative cycles");
  WearState w;
  w.cycles = cycles;
  const double decades =
      cycles > 1e6 ? std::log10(cycles) - 6.0 : 0.0;
  w.ron_multiplier = 1.0 + model.ron_growth_per_decade * decades;
  w.adhesion_multiplier = 1.0 + model.adhesion_growth_per_decade * decades;

  // Stiction when the grown adhesion force exceeds the elastic restoring
  // force at contact (Vpo collapses to zero).
  const double restoring =
      design.stiffness() * (design.geometry.gap - design.geometry.gap_min);
  w.stuck = design.adhesion_force * w.adhesion_multiplier >= restoring;
  return w;
}

double sample_cycles_to_failure(const WearModel& model, Rng& rng) {
  // Inverse-CDF sampling of Weibull(shape, scale).
  const double u = std::max(rng.uniform(), 1e-300);
  return weibull_scale(model) *
         std::pow(-std::log(1.0 - u), 1.0 / model.weibull_shape);
}

double array_survival(const WearModel& model, std::size_t n_relays,
                      double cycles) {
  if (cycles <= 0.0) return 1.0;
  // Per-relay survival S(c) = exp(-(c/lambda)^k); array = S^n.
  const double x = cycles / weibull_scale(model);
  const double log_s = -std::pow(x, model.weibull_shape);
  return std::exp(static_cast<double>(n_relays) * log_s);
}

double cycles_per_reconfiguration() { return 2.0; }

double reconfiguration_budget(const WearModel& model, std::size_t n_relays,
                              double survival_target) {
  if (survival_target <= 0.0 || survival_target >= 1.0) {
    throw std::invalid_argument("reconfiguration_budget: target in (0,1)");
  }
  if (n_relays == 0) throw std::invalid_argument("reconfiguration_budget: n=0");
  // Solve S^n = target for cycles: (c/lambda)^k = -ln(target)/n.
  const double per_relay = -std::log(survival_target) /
                           static_cast<double>(n_relays);
  const double cycles =
      weibull_scale(model) * std::pow(per_relay, 1.0 / model.weibull_shape);
  return cycles / cycles_per_reconfiguration();
}

}  // namespace nemfpga
