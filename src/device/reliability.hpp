// Relay endurance and the FPGA reconfiguration budget (paper Sec 1):
// NEM relays demonstrate on the order of billions of reliable switching
// cycles [Kam 09, Parsa 10] — marginal for logic (switching every cycle)
// but ample for FPGA routing, which sees only ~500 reconfigurations over
// a part's life [Kuon 07]. This module quantifies that argument:
// per-relay wear (contact degradation + stiction onset), array-level
// survival, and the implied reconfiguration budget.
#pragma once

#include <cstddef>

#include "device/nem_relay.hpp"
#include "util/rng.hpp"

namespace nemfpga {

/// Contact-wear model: each hot switching cycle roughens/contaminates the
/// contact, multiplying Ron, and grows the adhesion force toward stiction.
struct WearModel {
  /// Median cycles to contact failure (Ron beyond usable), per [Kam 09]
  /// class devices.
  double median_cycles_to_failure = 2e9;
  /// Weibull shape parameter (>1: wear-out dominated).
  double weibull_shape = 1.8;
  /// Relative Ron growth per decade of cycles beyond 1e6.
  double ron_growth_per_decade = 0.25;
  /// Adhesion growth per decade of cycles (fraction of restoring force).
  double adhesion_growth_per_decade = 0.04;
};

/// Deterministic wear state after `cycles` switching events.
struct WearState {
  double cycles = 0.0;
  double ron_multiplier = 1.0;      ///< Applies to the contact resistance.
  double adhesion_multiplier = 1.0; ///< Applies to the adhesion force.
  bool stuck = false;               ///< Stiction: Vpo collapsed to 0.
};

/// Evaluate median (deterministic) wear of a relay after `cycles`.
WearState wear_after(const RelayDesign& design, const WearModel& model,
                     double cycles);

/// Sample a relay's cycles-to-failure from the Weibull endurance
/// distribution.
double sample_cycles_to_failure(const WearModel& model, Rng& rng);

/// Probability that ALL `n_relays` survive `cycles` switching events
/// (analytic, from the Weibull CDF).
double array_survival(const WearModel& model, std::size_t n_relays,
                      double cycles);

/// Switching cycles each relay sees per FPGA reconfiguration with the
/// half-select scheme: one reset release plus (at most) one pull-in, and
/// `rows` half-select disturb events that do not actuate the beam — so 2
/// actuation cycles per reconfiguration.
double cycles_per_reconfiguration();

/// Maximum number of full-chip reconfigurations such that an FPGA with
/// `n_relays` routing relays keeps `survival_target` probability of zero
/// failures. The paper's point: this comes out orders of magnitude above
/// the ~500 reconfigurations FPGAs actually see.
double reconfiguration_budget(const WearModel& model, std::size_t n_relays,
                              double survival_target);

}  // namespace nemfpga
