#include "device/thermal.hpp"

#include <cmath>
#include <stdexcept>

namespace nemfpga {

double cmos_leakage_multiplier(const ThermalModel& m, double t_c) {
  return std::pow(2.0, (t_c - m.t_ref_c) / m.leak_doubling_c);
}

RelayDesign relay_at_temperature(const RelayDesign& d, const ThermalModel& m,
                                 double t_c) {
  RelayDesign out = d;
  const double dT = t_c - m.t_ref_c;
  const double factor = 1.0 + m.youngs_tc * dT;
  if (factor <= 0.0) {
    throw std::invalid_argument("relay_at_temperature: beyond material limit");
  }
  out.material.youngs_modulus = d.material.youngs_modulus * factor;
  // Adhesion scales with the (softened) stiffness it was calibrated
  // against, keeping the Vpo band consistent.
  out.adhesion_force = d.adhesion_force * factor;
  return out;
}

double relay_vpi_drift(const RelayDesign& d, const ThermalModel& m,
                       double t_c) {
  const RelayDesign hot = relay_at_temperature(d, m, t_c);
  return hot.pull_in_voltage() / d.pull_in_voltage() - 1.0;
}

}  // namespace nemfpga
