// Process-variation modelling for relay populations (paper Fig 6 and the
// half-select feasibility condition of Sec 2.3):
//
//   min{Vpi - Vpo} > Vpi,max - Vpi,min   over all relays in an array.
//
// Variations in Vpi/Vpo stem from dimensional variation of the fabricated
// beams (L, h, g0) — exactly what the paper attributes them to.
#pragma once

#include <vector>

#include "device/nem_relay.hpp"
#include "util/rng.hpp"

namespace nemfpga {

/// Relative (1-sigma) dimensional variation applied to a nominal design.
struct VariationSpec {
  double sigma_length_rel = 0.0;
  double sigma_thickness_rel = 0.0;
  double sigma_gap_rel = 0.0;
  double sigma_gap_min_rel = 0.0;
  /// Relative 1-sigma spread of the adhesion force (surface condition).
  double sigma_adhesion_rel = 0.0;
};

/// Variation calibrated to the measured spread of the paper's 100-relay
/// experiment (Vpi mostly 5–7 V, Vpo 2–3.4 V for a 6.2 V nominal device).
VariationSpec fabricated_variation();

/// One sampled device with its derived switching voltages.
struct RelaySample {
  RelayDesign design;
  double vpi = 0.0;
  double vpo = 0.0;
};

/// Draw one varied instance of the nominal design.
RelaySample sample_relay(const RelayDesign& nominal, const VariationSpec& spec,
                         Rng& rng);

/// Draw a population of n varied instances, consuming `rng` sequentially
/// (relay i's draws depend on all draws before it).
std::vector<RelaySample> sample_population(const RelayDesign& nominal,
                                           const VariationSpec& spec,
                                           std::size_t n, Rng& rng);

/// Draw a population of n varied instances in parallel: relay i is drawn
/// from its own child stream (Rng::fork semantics), so the result is
/// bit-identical at any NF_THREADS setting and relay i does not depend on
/// its neighbours' draws. Advances `rng` by exactly one draw (the fork
/// point); the values differ from the sequential overload's.
std::vector<RelaySample> sample_population_parallel(const RelayDesign& nominal,
                                                    const VariationSpec& spec,
                                                    std::size_t n, Rng& rng);

/// Population extremes needed by the half-select window analysis.
struct PopulationEnvelope {
  double vpi_min = 0.0;
  double vpi_max = 0.0;
  double vpo_min = 0.0;
  double vpo_max = 0.0;
  double min_hysteresis = 0.0;  ///< min over relays of (Vpi - Vpo).
};

PopulationEnvelope envelope(const std::vector<RelaySample>& population);

/// The paper's feasibility condition for one shared (Vhold, Vselect) pair:
/// min{Vpi - Vpo} > Vpi,max - Vpi,min.
bool half_select_feasible(const PopulationEnvelope& env);

}  // namespace nemfpga
