// Time-domain 1-DOF beam dynamics: the source of the ">1 ns mechanical
// switching delay" that makes NEM relays unattractive for logic but harmless
// for FPGA routing configuration (paper Sec 1).
//
//   m_eff x'' + (sqrt(k m_eff)/Q) x' + k x = eps A V^2 / (2 (g0 - x)^2)
//
// integrated with RK4; pull-in is detected when the beam reaches the
// contact position x = g0 - gmin.
#pragma once

#include <vector>

#include "device/nem_relay.hpp"

namespace nemfpga {

/// One sample of a transient beam trajectory.
struct BeamSample {
  double time = 0.0;         ///< [s]
  double displacement = 0.0; ///< x [m], 0 = rest, g0 - gmin = contact.
  double velocity = 0.0;     ///< [m/s]
};

/// Result of a pull-in (or release) transient.
struct SwitchingEvent {
  bool switched = false;     ///< Did the beam reach (leave) the contact?
  double delay = 0.0;        ///< Time to contact (or to rest) [s].
  std::vector<BeamSample> trajectory;
};

/// Simulate a pull-in transient: beam at rest, step |VGS| applied at t = 0.
/// `t_max` bounds the simulation; `record_trajectory` keeps the full
/// waveform (for plotting) instead of just the delay.
SwitchingEvent simulate_pull_in(const RelayDesign& design, double vgs,
                                double t_max, bool record_trajectory = false);

/// Simulate a release transient: beam held at contact, |VGS| stepped to the
/// given value at t = 0. The beam releases if the electrostatic + adhesion
/// hold force is below the elastic restoring force.
SwitchingEvent simulate_release(const RelayDesign& design, double vgs,
                                double t_max, bool record_trajectory = false);

/// Quasi-static equilibrium displacement for |VGS| below pull-in, found by
/// force balance (Newton iteration). Used to validate the 2/3-gap
/// instability point of the electrostatic actuator.
double equilibrium_displacement(const RelayDesign& design, double vgs);

}  // namespace nemfpga
