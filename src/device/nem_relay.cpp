#include "device/nem_relay.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/units.hpp"

namespace nemfpga {

double RelayDesign::stiffness() const {
  const auto& g = geometry;
  // Point-load cantilever stiffness 3EI/L^3 = E w h^3 / (4 L^3), scaled by
  // the calibration factor that absorbs the distributed-load correction.
  return stiffness_factor * material.youngs_modulus * g.width *
         g.thickness * g.thickness * g.thickness /
         (4.0 * g.length * g.length * g.length);
}

double RelayDesign::actuation_area() const {
  return electrode_fraction * geometry.width * geometry.length;
}

double RelayDesign::permittivity() const {
  return ambient.relative_permittivity * kEps0;
}

double RelayDesign::effective_mass() const {
  // First-mode modal mass of a cantilever is ~0.24 of the total beam mass.
  const auto& g = geometry;
  return 0.24 * material.density * g.width * g.thickness * g.length;
}

double RelayDesign::pull_in_voltage() const {
  const double k = stiffness();
  const double g0 = geometry.gap;
  return std::sqrt(8.0 * k * g0 * g0 * g0 /
                   (27.0 * permittivity() * actuation_area()));
}

double RelayDesign::pull_out_voltage() const {
  const double k = stiffness();
  const double gmin = geometry.gap_min;
  const double travel = geometry.gap - gmin;
  // Release happens when the elastic restoring force exceeds the sum of the
  // electrostatic hold force (at gap gmin) and the contact adhesion force.
  const double net_restoring = k * travel - adhesion_force;
  if (net_restoring <= 0.0) return 0.0;  // Permanently stuck (stiction).
  return std::sqrt(2.0 * gmin * gmin * net_restoring /
                   (permittivity() * actuation_area()));
}

double RelayDesign::hysteresis_window() const {
  return pull_in_voltage() - pull_out_voltage();
}

double RelayDesign::resonant_frequency() const {
  return std::sqrt(stiffness() / effective_mass()) /
         (2.0 * std::numbers::pi);
}

namespace {

/// Calibration anchor: the fabricated device measured Vpi = 6.2 V in oil.
constexpr double kMeasuredVpi = 6.2;

RelayDesign fabricated_uncalibrated() {
  RelayDesign d;
  d.geometry.length = 23.0 * micro;
  d.geometry.width = 2.0 * micro;
  d.geometry.thickness = 500.0 * nano;
  d.geometry.gap = 600.0 * nano;
  d.geometry.gap_min = 150.0 * nano;
  d.ambient = oil_ambient();
  return d;
}

/// kappa chosen once so the fabricated geometry in oil yields 6.2 V.
double calibrated_stiffness_factor() {
  static const double kappa = [] {
    RelayDesign d = fabricated_uncalibrated();
    const double vpi_raw = d.pull_in_voltage();
    const double r = kMeasuredVpi / vpi_raw;
    return r * r;  // Vpi scales as sqrt(kappa).
  }();
  return kappa;
}

}  // namespace

RelayDesign fabricated_relay() {
  RelayDesign d = fabricated_uncalibrated();
  d.stiffness_factor = calibrated_stiffness_factor();
  // Surface (van der Waals) adhesion lowers Vpo into the measured 2–3.4 V
  // band; 40% of the elastic restoring force lands mid-band.
  d.adhesion_force =
      0.4 * d.stiffness() * (d.geometry.gap - d.geometry.gap_min);
  return d;
}

RelayDesign scaled_relay_22nm() {
  RelayDesign d;
  d.geometry.length = 275.0 * nano;
  d.geometry.width = 40.0 * nano;
  d.geometry.thickness = 11.0 * nano;
  d.geometry.gap = 11.0 * nano;
  d.geometry.gap_min = 3.6 * nano;
  d.ambient = vacuum_ambient();  // Hermetically sealed [Gaddi 10, Xie 10].
  d.stiffness_factor = calibrated_stiffness_factor();
  // Encapsulation keeps contacts clean; keep a small adhesion term so the
  // hysteresis window stays open (Sec 2.3 wants a wide window).
  d.adhesion_force =
      0.2 * d.stiffness() * (d.geometry.gap - d.geometry.gap_min);
  return d;
}

RelayState::RelayState(const RelayDesign& design, bool pulled_in)
    : design_(design), pulled_in_(pulled_in) {}

void RelayState::apply_vgs(double vgs_abs) {
  if (vgs_abs < 0.0) {
    throw std::invalid_argument("RelayState::apply_vgs wants |VGS| >= 0");
  }
  if (vgs_abs >= design_.pull_in_voltage()) {
    pulled_in_ = true;
  } else if (vgs_abs <= design_.pull_out_voltage()) {
    pulled_in_ = false;
  }
  // Inside the hysteresis window: state is retained (the memory effect).
}

std::vector<IvPoint> sweep_iv(const RelayDesign& design, double v_max,
                              double v_step, double read_bias,
                              double on_resistance, double compliance,
                              double noise_floor) {
  if (v_step <= 0.0 || v_max <= 0.0) {
    throw std::invalid_argument("sweep_iv: bad sweep range");
  }
  RelayState state(design, /*pulled_in=*/false);
  std::vector<IvPoint> trace;
  auto record = [&](double v) {
    state.apply_vgs(v);
    IvPoint p;
    p.vgs = v;
    p.pulled_in = state.pulled_in();
    p.ids = state.pulled_in()
                ? std::min(read_bias / on_resistance, compliance)
                : noise_floor;
    trace.push_back(p);
  };
  for (double v = 0.0; v <= v_max + 1e-12; v += v_step) record(v);
  for (double v = v_max - v_step; v >= -1e-12; v -= v_step) record(v);
  return trace;
}

}  // namespace nemfpga
