// 22 nm CMOS technology model, PTM-flavoured [Zhao 06], providing the
// electrical constants the FPGA-level area / delay / power models consume:
// transistor drive and leakage, gate capacitance, the NMOS pass-transistor
// Vt drop (the problem NEM relays remove, Sec 3.2 / Fig 8), SRAM cell
// figures, and per-micron wire R/C for the metal stack.
//
// Absolute values are representative of published 22 nm PTM/ITRS data and
// are calibrated so the baseline CMOS-only FPGA reproduces the paper's
// Fig 9 power breakdown (routing buffers ~30% dynamic / ~70% leakage).
#pragma once

namespace nemfpga {

/// Per-transistor and supply-level constants at the 22 nm node.
struct CmosTech {
  double vdd = 0.8;          ///< Core supply [V].
  double vth_n = 0.29;       ///< NMOS threshold [V].
  double vth_p = 0.27;       ///< |PMOS threshold| [V].
  double feature = 22e-9;    ///< F, half-pitch [m].

  /// Minimum-width NMOS device width [m].
  double w_min = 44e-9;
  /// Gate capacitance per meter of transistor width [F/m].
  double c_gate_per_width = 0.9e-9;
  /// Drain junction capacitance per meter of width [F/m].
  double c_drain_per_width = 0.45e-9;
  /// Saturation drive current per meter of NMOS width [A/m].
  double i_on_per_width = 1.4e3;
  /// Subthreshold + gate leakage per meter of width at Vdd [A/m].
  double i_leak_per_width = 0.11;
  /// PMOS/NMOS drive ratio (mobility); PMOS is sized up by this factor.
  double beta_ratio = 1.8;

  /// Equivalent switching resistance [Ohm] of an NMOS of width w [m].
  double nmos_resistance(double w) const { return vdd / (i_on_per_width * w); }
  /// Gate capacitance [F] of a device of width w [m].
  double gate_cap(double w) const { return c_gate_per_width * w; }
  /// Drain capacitance [F] of a device of width w [m].
  double drain_cap(double w) const { return c_drain_per_width * w; }
  /// Leakage current [A] of a device of width w [m].
  double leak_current(double w) const { return i_leak_per_width * w; }

  /// Input capacitance [F] of a minimum-sized inverter (NMOS + beta*PMOS).
  double min_inverter_input_cap() const {
    return gate_cap(w_min) * (1.0 + beta_ratio);
  }
  /// Switching resistance [Ohm] of a minimum-sized inverter.
  double min_inverter_resistance() const { return nmos_resistance(w_min); }
  /// Self-load (drain) capacitance [F] of a minimum-sized inverter.
  double min_inverter_self_cap() const {
    return drain_cap(w_min) * (1.0 + beta_ratio);
  }
  /// Leakage power [W] of a minimum-sized inverter (average over states).
  double min_inverter_leakage() const {
    return 0.5 * vdd * leak_current(w_min) * (1.0 + beta_ratio);
  }
};

/// NMOS pass transistor used as the CMOS-only routing switch (Fig 3a).
struct PassTransistor {
  /// Width in multiples of w_min; FPGA routing switches are sized up for
  /// drive (VPR-style sizing).
  double width_mult = 8.0;

  /// On-resistance [Ohm]. Pass transistors conduct with VGS = Vdd at the
  /// input side but degrade as the output rises; the effective resistance
  /// is therefore worse than a grounded-source device by `degradation`.
  double on_resistance(const CmosTech& t) const {
    return degradation * t.nmos_resistance(t.w_min * width_mult);
  }
  /// Parasitic (source+drain) capacitance [F].
  double parasitic_cap(const CmosTech& t) const {
    return 2.0 * t.drain_cap(t.w_min * width_mult);
  }
  /// Leakage [A] — pass transistors leak between routing nodes. Routing
  /// switches are implemented in the high-Vt / long-channel flavor (their
  /// speed is dominated by the Vt drop anyway), cutting subthreshold
  /// leakage by ~50x versus core devices.
  double leakage(const CmosTech& t) const {
    return high_vt_leak_factor * t.leak_current(t.w_min * width_mult);
  }
  /// Highest voltage the switch can pass: Vdd - Vt (body effect included
  /// in the effective Vt). This is the Fig 8a "Vt drop".
  double passed_high_level(const CmosTech& t) const {
    return t.vdd - vt_drop(t);
  }
  double vt_drop(const CmosTech& t) const {
    return t.vth_n * body_effect;
  }

  double degradation = 2.2;  ///< Rising-output drive degradation factor.
  double body_effect = 1.25; ///< Vt increase from source-body bias.
  double high_vt_leak_factor = 0.09;  ///< High-Vt routing-device leakage.
};

/// 6T SRAM configuration cell figures at 22 nm.
struct SramCell {
  /// Standby leakage power [W] per cell (high-Vt, but millions of cells).
  double leakage_power = 3.2e-9;
  /// Layout area [m^2] per cell (~150 F^2 at 22 nm with periphery share).
  double area = 150.0 * 22e-9 * 22e-9;
};

/// Interconnect R/C per meter, 22 nm PTM-like, for the layers the FPGA
/// routing fabric uses (intermediate metal).
struct WireTech {
  double r_per_m = 3.0e6;    ///< [Ohm/m]  (3.0 Ohm/um)
  double c_per_m = 0.20e-9;  ///< [F/m]    (0.20 fF/um)
};

/// Bundled 22 nm technology handle.
struct Tech22nm {
  CmosTech cmos;
  PassTransistor routing_pass_transistor;
  SramCell sram;
  WireTech wire;
};

inline Tech22nm default_tech22() { return {}; }

}  // namespace nemfpga
