#include "device/variation.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace nemfpga {

VariationSpec fabricated_variation() {
  // Optical-lithography-era tolerances; chosen so a 100-sample population of
  // the fabricated device spans Vpi ~ 5–7 V and Vpo ~ 2–3.4 V as in Fig 6.
  VariationSpec spec;
  spec.sigma_length_rel = 0.010;
  spec.sigma_thickness_rel = 0.017;
  spec.sigma_gap_rel = 0.017;
  spec.sigma_gap_min_rel = 0.060;
  spec.sigma_adhesion_rel = 0.200;
  return spec;
}

namespace {

double vary(double nominal, double sigma_rel, Rng& rng) {
  // Truncate at +-3 sigma so geometry stays physical.
  const double z = std::clamp(rng.normal(), -3.0, 3.0);
  return nominal * (1.0 + sigma_rel * z);
}

}  // namespace

RelaySample sample_relay(const RelayDesign& nominal, const VariationSpec& spec,
                         Rng& rng) {
  RelaySample s;
  s.design = nominal;
  auto& g = s.design.geometry;
  g.length = vary(g.length, spec.sigma_length_rel, rng);
  g.thickness = vary(g.thickness, spec.sigma_thickness_rel, rng);
  g.gap = vary(g.gap, spec.sigma_gap_rel, rng);
  // Keep the pulled-in gap physical: strictly positive and below the rest
  // gap even under extreme draws.
  g.gap_min = std::clamp(vary(g.gap_min, spec.sigma_gap_min_rel, rng),
                         0.05 * g.gap, 0.95 * g.gap);
  s.design.adhesion_force =
      std::max(0.0, vary(nominal.adhesion_force, spec.sigma_adhesion_rel, rng));
  s.vpi = s.design.pull_in_voltage();
  s.vpo = s.design.pull_out_voltage();
  return s;
}

std::vector<RelaySample> sample_population(const RelayDesign& nominal,
                                           const VariationSpec& spec,
                                           std::size_t n, Rng& rng) {
  std::vector<RelaySample> pop;
  pop.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pop.push_back(sample_relay(nominal, spec, rng));
  }
  return pop;
}

std::vector<RelaySample> sample_population_parallel(const RelayDesign& nominal,
                                                    const VariationSpec& spec,
                                                    std::size_t n, Rng& rng) {
  const std::uint64_t stream = rng.next_u64();
  std::vector<RelaySample> pop(n);
  parallel_for(n, [&](std::size_t i) {
    Rng child = Rng::from_stream(stream, i);
    pop[i] = sample_relay(nominal, spec, child);
  });
  return pop;
}

PopulationEnvelope envelope(const std::vector<RelaySample>& population) {
  if (population.empty()) throw std::invalid_argument("envelope: empty");
  PopulationEnvelope env;
  env.vpi_min = std::numeric_limits<double>::infinity();
  env.vpo_min = std::numeric_limits<double>::infinity();
  env.min_hysteresis = std::numeric_limits<double>::infinity();
  env.vpi_max = -std::numeric_limits<double>::infinity();
  env.vpo_max = -std::numeric_limits<double>::infinity();
  for (const auto& s : population) {
    env.vpi_min = std::min(env.vpi_min, s.vpi);
    env.vpi_max = std::max(env.vpi_max, s.vpi);
    env.vpo_min = std::min(env.vpo_min, s.vpo);
    env.vpo_max = std::max(env.vpo_max, s.vpo);
    env.min_hysteresis = std::min(env.min_hysteresis, s.vpi - s.vpo);
  }
  return env;
}

bool half_select_feasible(const PopulationEnvelope& env) {
  return env.min_hysteresis > env.vpi_max - env.vpi_min;
}

}  // namespace nemfpga
