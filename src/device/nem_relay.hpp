// Nano-electro-mechanical relay device model (paper Sec 2.1, Figs 2 & 11).
//
// The relay is a cantilever beam (source electrode) actuated electrostatically
// by a gate; pulling in brings the beam tip into contact with the drain.
// Electromechanical instability makes the release (pull-out) voltage Vpo lower
// than the pull-in voltage Vpi, giving the hysteresis window that the
// half-select programming scheme (Sec 2.2) exploits.
//
// Model summary (constants follow [Kaajakari 09], calibrated to the paper's
// fabricated device — see DESIGN.md Sec 5):
//   stiffness      k   = kappa * E * w * h^3 / (4 L^3)
//   actuation area A   = alpha * w * L
//   pull-in        Vpi = sqrt(8 k g0^3 / (27 eps A))
//   pull-out       Vpo = sqrt(2 gmin^2 (k (g0 - gmin) - F_adh) / (eps A))
// Both reproduce the paper's stated dependencies
//   Vpi ∝ sqrt(E h^3 g0^3 / (eps L^4)),
//   Vpo ∝ sqrt(E h^3 gmin^2 (g0 - gmin) / (eps L^4)),
// and adhesion (surface) forces lower Vpo, widening the hysteresis window.
#pragma once

#include <string>
#include <vector>

namespace nemfpga {

/// Beam/electrode geometry. All lengths in meters.
struct BeamGeometry {
  double length = 0.0;   ///< L: beam length.
  double width = 0.0;    ///< w: beam depth normal to motion (cancels in Vpi).
  double thickness = 0.0;///< h: beam thickness in the bending direction.
  double gap = 0.0;      ///< g0: as-fabricated gate-to-beam gap.
  double gap_min = 0.0;  ///< gmin: residual gate-to-beam gap when pulled in.
};

/// Structural material of the beam.
struct BeamMaterial {
  double youngs_modulus = 160e9;  ///< E [Pa] (polysilicon).
  double density = 2330.0;        ///< rho [kg/m^3].
};

/// Ambient the relay switches in. The paper tests in oil (larger permittivity
/// lowers switching voltages and suppresses contact corrosion, [Lee 09]);
/// scaled devices are assumed hermetically encapsulated (vacuum-like).
struct Ambient {
  std::string name = "vacuum";
  double relative_permittivity = 1.0;
  double quality_factor = 3.0;  ///< Mechanical Q for the dynamics model.
};

inline Ambient vacuum_ambient() { return {"vacuum", 1.0, 5.0}; }
inline Ambient air_ambient() { return {"air", 1.0006, 2.0}; }
inline Ambient oil_ambient() { return {"oil", 2.2, 0.8}; }

/// Complete electro-mechanical design of one relay.
struct RelayDesign {
  BeamGeometry geometry;
  BeamMaterial material;
  Ambient ambient;

  /// Effective-stiffness calibration factor folded into k. Fixed once so the
  /// fabricated device reproduces the measured Vpi = 6.2 V in oil.
  double stiffness_factor = 1.0;
  /// Fraction of the beam footprint that acts as actuation electrode.
  double electrode_fraction = 0.8;
  /// Surface adhesion (van der Waals etc.) force at the contact [N].
  double adhesion_force = 0.0;

  /// Spring constant k [N/m] of the calibrated lumped model.
  double stiffness() const;
  /// Electrostatic actuation area A [m^2].
  double actuation_area() const;
  /// Ambient permittivity eps [F/m].
  double permittivity() const;
  /// Effective modal mass [kg] for the 1-DOF dynamics model.
  double effective_mass() const;

  /// Pull-in voltage Vpi [V].
  double pull_in_voltage() const;
  /// Pull-out voltage Vpo [V] (includes adhesion; clamped at >= 0).
  double pull_out_voltage() const;
  /// Hysteresis window Vpi - Vpo [V].
  double hysteresis_window() const;
  /// Mechanical resonant frequency [Hz].
  double resonant_frequency() const;
};

/// The device fabricated and measured in the paper (Fig 2b): L = 23 um,
/// h = 500 nm, g0 = 600 nm, tested in oil; measured Vpi = 6.2 V and
/// Vpo in 2–3.4 V. `stiffness_factor` is calibrated so Vpi matches exactly.
RelayDesign fabricated_relay();

/// The 22 nm-node scaled device of Fig 11: L = 275 nm, h = 11 nm,
/// g0 = 11 nm, gmin = 3.6 nm; sub-1V operation, hermetic ambient.
RelayDesign scaled_relay_22nm();

/// Mechanical switch state with hysteresis (the "configuration memory").
/// Off-state leakage is identically zero: there is no conduction path.
class RelayState {
 public:
  explicit RelayState(const RelayDesign& design, bool pulled_in = false);

  /// Apply a quasi-static |VGS| and update the mechanical state:
  /// >= Vpi pulls in, <= Vpo releases, in between holds the current state.
  void apply_vgs(double vgs_abs);

  bool pulled_in() const { return pulled_in_; }
  const RelayDesign& design() const { return design_; }

 private:
  RelayDesign design_;
  bool pulled_in_;
};

/// One point of a quasi-static I-V sweep.
struct IvPoint {
  double vgs = 0.0;
  double ids = 0.0;   ///< Drain-source current [A] at the read bias.
  bool pulled_in = false;
};

/// Sweep |VGS| up then down (Fig 2b): returns the hysteretic I-V trace.
/// `compliance` caps the on-current like the 100 nA compliance used during
/// testing; `noise_floor` models the 10 pA measurement floor; off-state
/// current is reported at the floor (the device itself leaks nothing).
std::vector<IvPoint> sweep_iv(const RelayDesign& design, double v_max,
                              double v_step, double read_bias = 1.0,
                              double on_resistance = 100e3,
                              double compliance = 100e-9,
                              double noise_floor = 10e-12);

}  // namespace nemfpga
