// Switch-technology backend registry.
//
// The paper's claims are relative — NEM relays vs CMOS pass-gates on the
// same fabric and flow — so the technology axis is pluggable: a
// SwitchTechnology backend bundles everything the electrical-view
// derivation (timing/variant.cpp) needs to know about one way of building
// a programmable routing switch:
//
//   - per-switch electrical figures (Ron, on/off parasitics, off leakage),
//   - how switches and their configuration storage occupy tile area
//     (in the CMOS plane, in a stacked BEOL layer, or both),
//   - the buffer-sizing policy (restoring CMOS chains vs full-swing
//     inverters, LB buffer removal, wire-buffer downsizing),
//   - per-configuration-bit standby leakage (SRAM vs nonvolatile).
//
// Four backends are registered by default:
//
//   cmos       NMOS pass transistor + SRAM cell (Fig 3a); restoring
//              half-latch buffers everywhere.
//   nem-naive  NEM relays replace every switch and its SRAM [Chen 10b];
//              buffers keep their natural (CMOS-computed) sizes.
//   nem-opt    relays + the paper's technique (Sec 3.2): LB buffers
//              removed, wire buffers downsized.
//   rram       4T1R-style resistive switches: BEOL RRAM cell in series,
//              CMOS-plane programming transistors, nonvolatile (no SRAM),
//              full swing, finite HRS sneak leakage.
//
// The legacy FpgaVariant enum (timing/variant.hpp) survives purely as an
// alias layer over the first three names so the paper flow reads as before.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "device/cmos.hpp"
#include "device/equivalent.hpp"

namespace nemfpga {

/// Per-switch electrical figures as seen by the routing network.
struct SwitchElectrical {
  double r_on = 0.0;       ///< Series resistance when configured on [Ohm].
  double c_off_load = 0.0; ///< Capacitive load of an off switch tap [F].
  double c_on_load = 0.0;  ///< Parasitic of an on switch [F].
  double leak_per_switch = 0.0;  ///< Off-state leakage current [A].
};

/// How a technology's switches and configuration storage occupy the tile.
/// tile_area() consumes this instead of branching on an enum: the CMOS
/// pass-gate policy is {1.0, true, 0.0} and the NEM relay policy is
/// {0.0, false, relay_cell_area} — exactly the two legacy branches.
struct SwitchAreaPolicy {
  /// Scales the in-plane (CMOS) MWTA of the switch devices themselves.
  /// 1.0 = full pass-transistor area, 0.0 = switches leave the plane
  /// entirely, >1.0 = extra in-plane support devices (e.g. 4T1R
  /// programming transistors).
  double switch_mwta_factor = 1.0;
  /// Configuration bits are SRAM cells in the CMOS plane; false for
  /// technologies whose switch state is stored in the device itself.
  bool config_bits_in_plane = true;
  /// Per-switch footprint in a stacked BEOL layer [m^2] (0 = none). The
  /// tile footprint is max(cmos_plane, stacked layer).
  double stacked_cell_area = 0.0;
};

/// Buffer-sizing policy; timing/variant.cpp interprets the flags against
/// the circuit-layer buffer constructors (device/ cannot depend on
/// circuit/, so the policy is declarative).
struct SwitchBufferPolicy {
  /// LB input/output buffers retained (the paper's technique removes them).
  bool lb_buffers_present = true;
  /// Switches pass full swing: buffers are plain inverter chains with no
  /// half-latch level restorer. False only for Vt-dropping pass gates.
  bool full_swing = false;
  /// Wire buffers may be designed for a pretend load c/downsize (the
  /// paper's Sec 3.2 sweep). make_view() rejects an explicit downsize on
  /// backends that do not support it.
  bool supports_wire_downsize = false;
};

/// One registered way of implementing the programmable routing switches.
class SwitchTechnology {
 public:
  virtual ~SwitchTechnology() = default;
  /// Registry name (stable; used in CLI flags and artifact-cache keys).
  virtual std::string_view name() const = 0;
  virtual SwitchElectrical electrical(const Tech22nm& tech,
                                      const RelayEquivalent& relay) const = 0;
  virtual SwitchAreaPolicy area_policy() const = 0;
  virtual SwitchBufferPolicy buffer_policy() const = 0;
  /// Standby leakage [W] per configuration bit (SRAM cell leakage for
  /// volatile technologies, 0 for mechanical/nonvolatile state).
  virtual double config_leak_per_bit(const Tech22nm& tech) const = 0;
};

/// Look up a backend by registry name (a few legacy aliases — "nem",
/// "nem_opt" — resolve too). Throws std::invalid_argument listing the
/// registered choices on an unknown name. The returned reference stays
/// valid for the process lifetime.
const SwitchTechnology& switch_technology(std::string_view name);

/// True if `name` (or a legacy alias) resolves to a registered backend.
bool switch_technology_registered(std::string_view name);

/// Registry names in registration order: {"cmos", "nem-naive", ...}.
std::vector<std::string_view> registered_switch_technologies();

/// The registered names joined as "cmos / nem-naive / ..." for error text.
std::string registered_switch_technology_names();

/// Register an additional backend (name must be unique). Intended for
/// experiments and tests; not thread-safe against concurrent lookups.
void register_switch_technology(std::unique_ptr<const SwitchTechnology> tech);

}  // namespace nemfpga
