// Temperature behavior of the two switch technologies. The paper's related
// work ([Wang 11]) builds NEM FPGAs for >500 C environments precisely
// because relay switching is electrostatic/mechanical: no junctions, no
// subthreshold conduction. This module models
//   - CMOS subthreshold leakage growth with temperature (the classic
//     ~2x / 8-10 C slope at 22 nm),
//   - the relay's mild Vpi drift from Young's-modulus softening,
// letting the power study be re-evaluated across the industrial
// temperature range and beyond.
#pragma once

#include "device/cmos.hpp"
#include "device/nem_relay.hpp"

namespace nemfpga {

struct ThermalModel {
  double t_ref_c = 25.0;           ///< Reference temperature [C].
  /// CMOS subthreshold leakage multiplies by 2 every `leak_doubling_c`.
  double leak_doubling_c = 18.0;
  /// Relative Young's-modulus softening per Kelvin (poly-Si, ~ -6e-5/K).
  double youngs_tc = -6.0e-5;
  /// Upper limit for silicon CMOS operation [C].
  double cmos_max_c = 125.0;
};

/// CMOS leakage multiplier at temperature `t_c` versus the reference.
double cmos_leakage_multiplier(const ThermalModel& m, double t_c);

/// The relay design re-evaluated at temperature `t_c` (Young's modulus
/// softened); Vpi/Vpo shift only a few percent over hundreds of Kelvin.
RelayDesign relay_at_temperature(const RelayDesign& d, const ThermalModel& m,
                                 double t_c);

/// Relative Vpi drift at temperature `t_c` (e.g. -0.01 = 1% lower).
double relay_vpi_drift(const RelayDesign& d, const ThermalModel& m,
                       double t_c);

}  // namespace nemfpga
