#include "device/equivalent.hpp"

#include <cmath>

#include "util/units.hpp"

namespace nemfpga {
namespace {

// Layout fringe term calibrated once against the Fig 11 simulation value
// (Con = 20 aF) for the scaled device; the plate term alone gives ~11.8 aF.
constexpr double kOnFringe = 8.2 * atto;

}  // namespace

RelayEquivalent equivalent_circuit(const RelayDesign& design,
                                   const ContactModel& contact) {
  RelayEquivalent eq;
  eq.ron = contact.clean_resistance * contact.contamination_factor;

  const double eps = design.permittivity();
  const double area = design.actuation_area();
  const double g0 = design.geometry.gap;
  const double gmin = design.geometry.gap_min;
  // On-state: the pulled-in beam is bent, its gap tapering linearly from g0
  // at the anchor to gmin at the tip; integrating eps*w/g(x) along the beam
  // gives the ln(g0/gmin)/(g0 - gmin) form.
  eq.con = eps * area * std::log(g0 / gmin) / (g0 - gmin) + kOnFringe;
  // Off-state: straight beam at the rest gap g0.
  eq.coff = eps * area / g0;
  return eq;
}

RelayEquivalent fig11_equivalent() {
  return {/*ron=*/2e3, /*con=*/20.0 * atto, /*coff=*/6.7 * atto};
}

}  // namespace nemfpga
