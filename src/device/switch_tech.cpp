#include "device/switch_tech.hpp"

#include <stdexcept>
#include <utility>

namespace nemfpga {
namespace {

/// Fig 11 beam (275 x 40 nm) plus anchor, contacts and programming-line
/// pitch share; calibrated so the stacked relay plane reproduces the
/// paper's layout result (2.1x tile reduction, Sec 3.4). Kept in sync
/// with AreaCosts::relay_cell_area (arch/arch_model.hpp).
constexpr double kRelayCellArea = 0.487e-6 * 0.10e-6;

class CmosPassGate final : public SwitchTechnology {
 public:
  std::string_view name() const override { return "cmos"; }
  SwitchElectrical electrical(const Tech22nm& tech,
                              const RelayEquivalent&) const override {
    const PassTransistor& pt = tech.routing_pass_transistor;
    SwitchElectrical sw;
    sw.r_on = pt.on_resistance(tech.cmos);
    sw.c_off_load = tech.cmos.drain_cap(tech.cmos.w_min * pt.width_mult);
    sw.c_on_load = pt.parasitic_cap(tech.cmos);
    sw.leak_per_switch = pt.leakage(tech.cmos);
    return sw;
  }
  SwitchAreaPolicy area_policy() const override { return {1.0, true, 0.0}; }
  SwitchBufferPolicy buffer_policy() const override {
    return {true, false, false};
  }
  double config_leak_per_bit(const Tech22nm& tech) const override {
    return tech.sram.leakage_power;
  }
};

class NemRelayBase : public SwitchTechnology {
 public:
  SwitchElectrical electrical(const Tech22nm&,
                              const RelayEquivalent& relay) const override {
    SwitchElectrical sw;
    sw.r_on = relay.ron;
    sw.c_off_load = relay.coff;  // zero-leakage mechanical air gap
    sw.c_on_load = relay.con;
    sw.leak_per_switch = 0.0;
    return sw;
  }
  SwitchAreaPolicy area_policy() const override {
    return {0.0, false, kRelayCellArea};
  }
  double config_leak_per_bit(const Tech22nm&) const override { return 0.0; }
};

class NemRelayNaive final : public NemRelayBase {
 public:
  std::string_view name() const override { return "nem-naive"; }
  SwitchBufferPolicy buffer_policy() const override {
    // Relays (full swing) but buffers retained at their natural size.
    return {true, true, false};
  }
};

class NemRelayOptimized final : public NemRelayBase {
 public:
  std::string_view name() const override { return "nem-opt"; }
  SwitchBufferPolicy buffer_policy() const override {
    return {false, true, true};
  }
};

/// 4T1R-style resistive switch [cf. tangxifan vpr7_rram]: the RRAM cell
/// sits between metal layers (tiny BEOL footprint), its four programming
/// transistors stay in the CMOS plane, and the LRS/HRS state is
/// nonvolatile — no SRAM cell and no SRAM leakage, but a finite HRS
/// sneak current through every off switch. Full swing (a resistor has no
/// Vt drop), so buffers are plain inverter chains like the relay fabric.
class Rram4T1R final : public SwitchTechnology {
 public:
  std::string_view name() const override { return "rram"; }
  SwitchElectrical electrical(const Tech22nm& tech,
                              const RelayEquivalent&) const override {
    SwitchElectrical sw;
    sw.r_on = kLrsResistance;
    sw.c_off_load = kCellCap;
    sw.c_on_load = kCellCap;
    sw.leak_per_switch = tech.cmos.vdd / kHrsResistance;
    return sw;
  }
  SwitchAreaPolicy area_policy() const override {
    // Programming transistors amortize to ~2 min-width devices of extra
    // in-plane area per switch on top of the pass-gate MWTA baseline;
    // the cell itself is a ~100 nm pitch BEOL dot.
    return {2.0, false, kCellArea};
  }
  SwitchBufferPolicy buffer_policy() const override {
    return {true, true, false};
  }
  double config_leak_per_bit(const Tech22nm&) const override { return 0.0; }

 private:
  static constexpr double kLrsResistance = 4e3;   ///< On (LRS) [Ohm].
  static constexpr double kHrsResistance = 1e8;   ///< Off (HRS) [Ohm].
  static constexpr double kCellCap = 4e-17;       ///< Cell + via [F].
  static constexpr double kCellArea = 100e-9 * 100e-9;  ///< BEOL [m^2].
};

std::vector<std::unique_ptr<const SwitchTechnology>>& registry() {
  static std::vector<std::unique_ptr<const SwitchTechnology>> r = [] {
    std::vector<std::unique_ptr<const SwitchTechnology>> v;
    v.push_back(std::make_unique<CmosPassGate>());
    v.push_back(std::make_unique<NemRelayNaive>());
    v.push_back(std::make_unique<NemRelayOptimized>());
    v.push_back(std::make_unique<Rram4T1R>());
    return v;
  }();
  return r;
}

/// Legacy spellings kept for the serve protocol and old scripts.
std::string_view resolve_alias(std::string_view name) {
  if (name == "nem" || name == "nem_naive") return "nem-naive";
  if (name == "nem_opt" || name == "nem-optimized") return "nem-opt";
  return name;
}

const SwitchTechnology* find(std::string_view name) {
  const std::string_view canonical = resolve_alias(name);
  for (const auto& t : registry()) {
    if (t->name() == canonical) return t.get();
  }
  return nullptr;
}

}  // namespace

const SwitchTechnology& switch_technology(std::string_view name) {
  if (const SwitchTechnology* t = find(name)) return *t;
  throw std::invalid_argument("unknown switch technology '" +
                              std::string(name) + "' (registered: " +
                              registered_switch_technology_names() + ")");
}

bool switch_technology_registered(std::string_view name) {
  return find(name) != nullptr;
}

std::vector<std::string_view> registered_switch_technologies() {
  std::vector<std::string_view> names;
  names.reserve(registry().size());
  for (const auto& t : registry()) names.push_back(t->name());
  return names;
}

std::string registered_switch_technology_names() {
  std::string out;
  for (const auto& t : registry()) {
    if (!out.empty()) out += " / ";
    out += t->name();
  }
  return out;
}

void register_switch_technology(
    std::unique_ptr<const SwitchTechnology> tech) {
  if (!tech) throw std::invalid_argument("null switch technology");
  if (find(tech->name()) != nullptr) {
    throw std::invalid_argument("switch technology '" +
                                std::string(tech->name()) +
                                "' already registered");
  }
  registry().push_back(std::move(tech));
}

}  // namespace nemfpga
