#include "device/beam_dynamics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace nemfpga {
namespace {

struct BeamOde {
  double k;        // spring constant
  double m;        // effective mass
  double b;        // damping coefficient
  double eps_a;    // eps * A
  double g0;       // rest gap
  double x_contact;// displacement at contact
  double f_adh;    // adhesion force, active only at contact

  double electrostatic_force(double v, double x) const {
    // Clamp the gap to avoid the singularity as the beam approaches the gate.
    const double gap = std::max(g0 - x, 0.02 * g0);
    return eps_a * v * v / (2.0 * gap * gap);
  }

  // dx/dt and dv/dt for the free (non-contact) beam under drive voltage v.
  // Adhesion only acts at the contact and is handled by the release logic.
  void deriv(double v, double x, double vel, double& dx, double& dv) const {
    const double force = electrostatic_force(v, x) - k * x - b * vel;
    dx = vel;
    dv = force / m;
  }
};

BeamOde make_ode(const RelayDesign& d) {
  BeamOde ode;
  ode.k = d.stiffness();
  ode.m = d.effective_mass();
  ode.b = std::sqrt(ode.k * ode.m) / std::max(d.ambient.quality_factor, 0.05);
  ode.eps_a = d.permittivity() * d.actuation_area();
  ode.g0 = d.geometry.gap;
  ode.x_contact = d.geometry.gap - d.geometry.gap_min;
  ode.f_adh = d.adhesion_force;
  return ode;
}

/// RK4 step of the free (non-contact) beam equation.
void rk4_step(const BeamOde& ode, double v, double dt, double& x,
              double& vel) {
  double k1x, k1v, k2x, k2v, k3x, k3v, k4x, k4v;
  ode.deriv(v, x, vel, k1x, k1v);
  ode.deriv(v, x + 0.5 * dt * k1x, vel + 0.5 * dt * k1v, k2x, k2v);
  ode.deriv(v, x + 0.5 * dt * k2x, vel + 0.5 * dt * k2v, k3x, k3v);
  ode.deriv(v, x + dt * k3x, vel + dt * k3v, k4x, k4v);
  x += dt / 6.0 * (k1x + 2.0 * k2x + 2.0 * k3x + k4x);
  vel += dt / 6.0 * (k1v + 2.0 * k2v + 2.0 * k3v + k4v);
}

}  // namespace

SwitchingEvent simulate_pull_in(const RelayDesign& design, double vgs,
                                double t_max, bool record_trajectory) {
  if (t_max <= 0.0) throw std::invalid_argument("simulate_pull_in: t_max");
  const BeamOde ode = make_ode(design);
  // Resolve the mechanical period well; contact crossing ends the run.
  const double period = 1.0 / design.resonant_frequency();
  const double dt = period / 400.0;

  SwitchingEvent ev;
  double x = 0.0, vel = 0.0, t = 0.0;
  auto record = [&] {
    if (record_trajectory) ev.trajectory.push_back({t, x, vel});
  };
  record();
  while (t < t_max) {
    rk4_step(ode, vgs, dt, x, vel);
    t += dt;
    x = std::max(x, -ode.g0);  // Guard against numerical overshoot backwards.
    record();
    if (x >= ode.x_contact) {
      ev.switched = true;
      ev.delay = t;
      return ev;
    }
  }
  ev.delay = t_max;
  return ev;
}

SwitchingEvent simulate_release(const RelayDesign& design, double vgs,
                                double t_max, bool record_trajectory) {
  if (t_max <= 0.0) throw std::invalid_argument("simulate_release: t_max");
  const BeamOde ode = make_ode(design);

  SwitchingEvent ev;
  // At contact the beam stays put unless the elastic force beats the
  // electrostatic hold force plus adhesion (same condition as Vpo).
  const double gap = design.geometry.gap_min;
  const double hold =
      ode.eps_a * vgs * vgs / (2.0 * gap * gap) + ode.f_adh;
  const double restoring = ode.k * ode.x_contact;
  if (restoring <= hold) {
    ev.switched = false;
    ev.delay = t_max;
    if (record_trajectory) ev.trajectory.push_back({0.0, ode.x_contact, 0.0});
    return ev;
  }

  const double period = 1.0 / design.resonant_frequency();
  const double dt = period / 400.0;
  double x = ode.x_contact, vel = 0.0, t = 0.0;
  auto record = [&] {
    if (record_trajectory) ev.trajectory.push_back({t, x, vel});
  };
  record();
  // Released: ring down until the beam is clearly away from the contact.
  while (t < t_max) {
    rk4_step(ode, vgs, dt, x, vel);
    t += dt;
    record();
    if (x <= 0.5 * ode.x_contact && !ev.switched) {
      ev.switched = true;
      ev.delay = t;
      if (!record_trajectory) return ev;
    }
  }
  if (!ev.switched) ev.delay = t_max;
  return ev;
}

double equilibrium_displacement(const RelayDesign& design, double vgs) {
  if (vgs >= design.pull_in_voltage()) {
    throw std::invalid_argument("equilibrium_displacement: vgs >= Vpi");
  }
  const BeamOde ode = make_ode(design);
  // Bisection on f(x) = Fe(x) - k x over [0, 2/3 g0): below pull-in the
  // stable equilibrium lies below the 1/3-travel instability point.
  double lo = 0.0, hi = ode.g0 / 3.0;
  auto f = [&](double x) {
    return ode.eps_a * vgs * vgs / (2.0 * (ode.g0 - x) * (ode.g0 - x)) -
           ode.k * x;
  };
  if (f(hi) > 0.0) return hi;  // At the edge of instability.
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    (f(mid) > 0.0 ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace nemfpga
