// Relay on/off equivalent circuits (paper Fig 11). After configuration the
// relay never moves, so to the routing network it is just:
//   on  : Ron in series, plus a grounded parasitic Con at each terminal side
//   off : a tiny feed-through coupling Coff (and zero leakage)
//
// Fig 11 values for the 22 nm-scaled device: Ron = 2 kOhm (experimental,
// [Parsa 10]), Con = 20 aF, Coff = 6.7 aF (simulation).
#pragma once

#include "device/nem_relay.hpp"

namespace nemfpga {

/// Terminal-level equivalent of a configured relay.
struct RelayEquivalent {
  double ron = 0.0;   ///< On-state contact resistance [Ohm].
  double con = 0.0;   ///< On-state parasitic capacitance [F].
  double coff = 0.0;  ///< Off-state feed-through capacitance [F].
};

/// Contact quality knob. The paper measured ~2 kOhm on clean devices
/// [Parsa 10] but ~100 kOhm on the (uncapsulated) crossbar relays due to
/// surface contamination (Sec 2.3); `ron_sensitivity` ablates this.
struct ContactModel {
  /// Clean-contact resistance at the paper's reference contact area [Ohm].
  double clean_resistance = 2e3;
  /// Multiplier >= 1 modelling contamination / unencapsulated operation.
  double contamination_factor = 1.0;
};

/// Equivalent circuit for a relay design. Capacitances combine a
/// parallel-plate term from the geometry with a layout fringe term
/// calibrated so the Fig 11 device yields Con = 20 aF / Coff = 6.7 aF.
RelayEquivalent equivalent_circuit(const RelayDesign& design,
                                   const ContactModel& contact = {});

/// The Fig 11 reference values (used directly by the FPGA-level study).
RelayEquivalent fig11_equivalent();

}  // namespace nemfpga
