// Content-addressed artifact cache — the shared-immutable-state half of
// the flow-as-a-service architecture (ROADMAP "Flow-as-a-service"). The
// expensive artifacts a flow builds before routing (RR graph, A*
// lookahead table, lowered delay model) are pure functions of a small
// parameter tuple, so N jobs on the same architecture should pay the
// build cost once. Each artifact is hash-consed under a canonical string
// fingerprint of exactly the parameters it depends on (see
// flow_artifacts.hpp for the per-type key rules) and handed out as
// shared_ptr<const T>: immutable, thread-safe to read, lifetime-safe
// even after eviction (eviction only drops the cache's reference).
//
// Concurrency contract:
//   - get_or_build is safe from any number of threads.
//   - Single-flight construction: the first requester of an absent key
//     claims it by inserting a building entry under the cache lock and
//     becomes the sole builder; the build itself runs outside the lock.
//     Concurrent requesters of the same key block until the build
//     finishes (counted in Stats::single_flight_waits) and then share
//     the one result. There is never a second concurrent build of the
//     same key, so the "double build race" resolves deterministically
//     to the map-insertion winner.
//   - A builder that throws wakes the waiters, removes its claim and
//     rethrows; each waiter then retries from scratch (one of them
//     becomes the next builder).
//   - Eviction is LRU by resident bytes: whenever an insert pushes the
//     resident total over max_bytes, least-recently-used ready entries
//     are dropped (never in-flight builds, never the entry just
//     inserted — the caller is about to use it).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace nemfpga {

class ArtifactCache {
 public:
  /// Observability counters (satellite of ISSUE 9): monotonic except the
  /// resident_bytes / entries gauges. Note the hit/wait split is timing
  /// dependent under concurrency (a requester arriving while the build
  /// is in flight waits; one arriving after it finished hits), so
  /// cross-run comparisons should pin misses, evictions and the sum
  /// hits + single_flight_waits ("reuses") — bench_check's serve family
  /// does exactly that.
  struct Stats {
    std::uint64_t hits = 0;                ///< Served ready from cache.
    std::uint64_t misses = 0;              ///< Builder claims (== builds).
    std::uint64_t evictions = 0;           ///< Entries dropped by LRU.
    std::uint64_t single_flight_waits = 0; ///< Blocked on in-flight build.
    std::uint64_t failed_builds = 0;       ///< Builder threw.
    std::size_t resident_bytes = 0;        ///< Bytes of ready entries.
    std::size_t entries = 0;               ///< Ready entries resident.
  };

  /// Default budget: generous for a daemon (the largest single artifact,
  /// an explicit RrGraph of the synth-l ladder rung, is ~100 MB).
  static constexpr std::size_t kDefaultMaxBytes =
      static_cast<std::size_t>(4) << 30;  // 4 GiB

  explicit ArtifactCache(std::size_t max_resident_bytes = kDefaultMaxBytes)
      : max_bytes_(max_resident_bytes) {}

  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Return the artifact under `key`, building it with `build` on a miss.
  /// `build` must return a non-null shared_ptr<const T>; `bytes` sizes
  /// the finished artifact for the eviction budget. Keys must be
  /// namespaced per artifact type (the flow_artifacts.hpp helpers prefix
  /// "rr/", "irr/", "la/", "dm/") — the cache stores values type-erased
  /// and trusts the key to identify the type. `built`, when non-null, is
  /// set to whether THIS call ran the builder (false on a hit or a
  /// single-flight wait) — per-call accounting for
  /// RouteCounters::t_lookahead_build_s honesty.
  template <typename T, typename Build, typename Bytes>
  std::shared_ptr<const T> get_or_build(const std::string& key, Build&& build,
                                        Bytes&& bytes,
                                        bool* built = nullptr) {
    const ErasedBuild erased = [&]() -> ErasedValue {
      std::shared_ptr<const T> v = build();
      const std::size_t b = v ? bytes(*v) : 0;
      return {std::static_pointer_cast<const void>(std::move(v)), b};
    };
    return std::static_pointer_cast<const T>(
        get_or_build_erased(key, erased, built));
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  std::size_t max_bytes() const { return max_bytes_; }

  /// Drop every ready entry (in-flight builds complete and then insert
  /// normally). Counters other than the gauges are retained.
  void clear();

 private:
  struct ErasedValue {
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
  };
  using ErasedBuild = std::function<ErasedValue()>;

  struct Entry {
    std::shared_ptr<const void> value;  ///< Null while building.
    std::size_t bytes = 0;
    std::uint64_t last_use = 0;  ///< LRU tick; higher == more recent.
    bool ready = false;
    bool failed = false;  ///< Builder threw; waiters must retry.
  };

  std::shared_ptr<const void> get_or_build_erased(const std::string& key,
                                                  const ErasedBuild& build,
                                                  bool* built);
  /// Drop LRU ready entries until resident <= max_bytes. `protect` is
  /// the key just inserted (its caller holds the value anyway, but
  /// evicting it would defeat the warm-up of every priming pass whose
  /// artifact alone fits the budget). Requires mu_ held.
  void evict_locked(const std::string& protect);

  const std::size_t max_bytes_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::shared_ptr<Entry>> entries_;
  std::uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace nemfpga
