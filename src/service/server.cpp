#include "service/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>

#include "device/switch_tech.hpp"
#include "netlist/mcnc.hpp"
#include "netlist/synth_gen.hpp"

namespace nemfpga {
namespace {

/// Canonical backend name for the job's "variant" field. The registry
/// resolves the legacy protocol spellings ("nem", "nem_opt") itself; an
/// unknown name becomes a job-level error listing the registered
/// backends.
std::string backend_from_string(const std::string& s) {
  if (!switch_technology_registered(s)) {
    throw std::runtime_error("unknown variant '" + s + "' (registered: " +
                             registered_switch_technology_names() + ")");
  }
  return std::string(switch_technology(s).name());
}

char hex_digit(std::uint64_t v) {
  return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
}

std::string hex64(std::uint64_t v) {
  std::string s = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    s += hex_digit((v >> shift) & 0xf);
  }
  return s;
}

std::string serialize_result(const JsonObject& req, const FlowJobResult& r) {
  JsonWriter w;
  if (req.has("id")) w.field("id", req.get_number("id"));
  w.field("ok", r.ok);
  w.field("name", r.name);
  if (!r.ok) {
    w.field("error", r.error);
    return w.str();
  }
  w.field("nx", static_cast<std::uint64_t>(r.nx));
  w.field("ny", static_cast<std::uint64_t>(r.ny));
  w.field("w", static_cast<std::uint64_t>(r.w));
  w.field("iterations", static_cast<std::uint64_t>(r.route_iterations));
  w.field("overused", static_cast<std::uint64_t>(r.overused_nodes));
  w.field("tree_checksum", hex64(r.tree_checksum));
  w.field("placement_cost", r.placement_cost);
  w.field("critical_path_s", r.critical_path_s);
  w.field("lookahead_cached", r.counters.lookahead_cached);
  w.field("t_lookahead_build_s", r.counters.t_lookahead_build_s);
  w.field("wall_s", r.wall_s);
  return w.str();
}

std::string serialize_error(const JsonObject& req, const std::string& why) {
  JsonWriter w;
  if (req.has("id")) w.field("id", req.get_number("id"));
  w.field("ok", false);
  w.field("error", why);
  return w.str();
}

/// One pending response: either already rendered, or a job in flight
/// whose result renders when its turn to be written comes.
struct PendingResponse {
  std::string ready;
  std::future<FlowJobResult> fut;
  JsonObject req;
  bool is_future = false;
};

bool send_line(int fd, const std::string& line) {
  std::string out = line;
  out += '\n';
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::send(fd, out.data() + off, out.size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

FlowJob job_from_json(const JsonObject& o, const ServeOptions& defaults) {
  FlowJob job;
  job.opt.arch = defaults.arch;
  const std::string bench = o.get_string("benchmark");
  if (!bench.empty()) {
    job.name = bench;
    job.netlist = generate_benchmark(bench);
  } else if (o.has("synth_luts")) {
    SynthSpec spec;
    spec.n_luts = static_cast<std::size_t>(o.get_number("synth_luts"));
    if (spec.n_luts == 0) {
      throw std::runtime_error("synth_luts must be positive");
    }
    spec.n_inputs =
        static_cast<std::size_t>(o.get_number("inputs", 32.0));
    spec.n_outputs =
        static_cast<std::size_t>(o.get_number("outputs", 32.0));
    spec.n_latches =
        static_cast<std::size_t>(o.get_number("latches", 0.0));
    spec.locality = o.get_number("locality", 1.0);
    spec.name = "synth-" + std::to_string(spec.n_luts);
    job.name = spec.name;
    job.netlist = generate_netlist(spec);
  } else {
    throw std::runtime_error(
        "flow request needs \"benchmark\" or \"synth_luts\"");
  }
  if (o.has("w")) {
    const double w = o.get_number("w");
    if (w < 2.0) throw std::runtime_error("w must be >= 2");
    job.opt.arch.W = static_cast<std::size_t>(w);
  }
  if (o.has("seed")) {
    job.opt.place.seed =
        static_cast<std::uint64_t>(o.get_number("seed", 1.0));
  }
  job.opt.route.timing_driven = o.get_bool("timing", false);
  job.opt.timing_backend =
      backend_from_string(o.get_string("variant", "cmos"));
  job.opt.arch.sb_pattern =
      sb_pattern_from_name(o.get_string("sb_pattern", "wilton"));
  return job;
}

ServeServer::ServeServer(const ServeOptions& opt)
    : opt_(opt),
      cache_(opt.cache_bytes),
      scheduler_(cache_, opt.workers) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opt.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot bind 127.0.0.1:" +
                             std::to_string(opt.port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

ServeServer::~ServeServer() {
  shutdown();
  for (std::thread& t : conns_) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void ServeServer::shutdown() {
  if (!stop_.exchange(true) && listen_fd_ >= 0) {
    // Unblock the accept loop; run() joins the connections.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
}

void ServeServer::run() {
  while (!stop_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load()) break;
      continue;  // transient accept failure
    }
    conns_.emplace_back([this, fd] { connection_loop(fd); });
  }
  for (std::thread& t : conns_) {
    if (t.joinable()) t.join();
  }
  conns_.clear();
}

std::string ServeServer::stats_json() {
  const ArtifactCache::Stats cs = cache_.stats();
  const JobScheduler::Counters jc = scheduler_.counters();
  JsonWriter w;
  w.field("ok", true);
  w.field("workers", static_cast<std::uint64_t>(scheduler_.workers()));
  w.field("jobs_submitted", jc.submitted);
  w.field("jobs_completed", jc.completed);
  w.field("jobs_failed", jc.failed);
  w.field("cache_hits", cs.hits);
  w.field("cache_misses", cs.misses);
  w.field("cache_evictions", cs.evictions);
  w.field("cache_single_flight_waits", cs.single_flight_waits);
  w.field("cache_failed_builds", cs.failed_builds);
  w.field("cache_resident_bytes", static_cast<std::uint64_t>(cs.resident_bytes));
  w.field("cache_entries", static_cast<std::uint64_t>(cs.entries));
  w.field("cache_max_bytes", static_cast<std::uint64_t>(cache_.max_bytes()));
  return w.str();
}

std::string ServeServer::handle_request_line(const std::string& line) {
  JsonObject req;
  try {
    req = parse_json_object(line);
    const std::string op = req.get_string("op");
    if (op == "flow") {
      FlowJob job = job_from_json(req, opt_);
      return serialize_result(req, scheduler_.submit(std::move(job)).get());
    }
    if (op == "stats") {
      std::string s = stats_json();
      if (req.has("id")) {
        JsonWriter w;
        w.field("id", req.get_number("id"));
        const std::string idobj = w.str();
        // Splice the id in front of the stats body: {"id":N, + rest.
        s = idobj.substr(0, idobj.size() - 1) + "," + s.substr(1);
      }
      return s;
    }
    if (op == "shutdown") {
      shutdown();
      JsonWriter w;
      if (req.has("id")) w.field("id", req.get_number("id"));
      w.field("ok", true);
      w.field("shutting_down", true);
      return w.str();
    }
    throw std::runtime_error("unknown op '" + op + "'");
  } catch (const std::exception& e) {
    return serialize_error(req, e.what());
  }
}

void ServeServer::connection_loop(int fd) {
  // Reader (this thread) parses and submits; the writer thread renders
  // responses strictly in request order, blocking on each job future in
  // turn — so pipelined requests run concurrently on the scheduler while
  // the wire stays ordered.
  std::mutex mu;
  std::condition_variable cv;
  std::deque<PendingResponse> pending;
  bool done = false;

  std::thread writer([&] {
    for (;;) {
      PendingResponse p;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done || !pending.empty(); });
        if (pending.empty()) return;
        p = std::move(pending.front());
        pending.pop_front();
      }
      std::string line;
      if (p.is_future) {
        try {
          line = serialize_result(p.req, p.fut.get());
        } catch (const std::exception& e) {
          line = serialize_error(p.req, e.what());
        }
      } else {
        line = std::move(p.ready);
      }
      if (!send_line(fd, line)) return;  // client went away
    }
  });

  const auto push = [&](PendingResponse p) {
    {
      std::lock_guard<std::mutex> lock(mu);
      pending.push_back(std::move(p));
    }
    cv.notify_one();
  };

  std::string buf;
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buf.find('\n');
    if (nl != std::string::npos) {
      const std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      if (opt_.verbose) {
        std::printf("serve: <- %s\n", line.c_str());
        std::fflush(stdout);
      }
      PendingResponse p;
      try {
        p.req = parse_json_object(line);
        const std::string op = p.req.get_string("op");
        if (op == "flow") {
          FlowJob job = job_from_json(p.req, opt_);
          p.fut = scheduler_.submit(std::move(job));
          p.is_future = true;
        } else {
          p.ready = handle_request_line(line);
        }
      } catch (const std::exception& e) {
        p.ready = serialize_error(p.req, e.what());
      }
      push(std::move(p));
      continue;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // EOF or error
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
  }
  cv.notify_all();
  writer.join();
  ::close(fd);
}

}  // namespace nemfpga
