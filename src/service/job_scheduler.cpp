#include "service/job_scheduler.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.hpp"

namespace nemfpga {
namespace {

double wall_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint64_t routing_tree_checksum(const RoutingResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& t : r.trees) {
    mix(t.source);
    mix(t.edges.size());
    for (const auto& [from, to] : t.edges) {
      mix((static_cast<std::uint64_t>(from) << 32) | to);
    }
    for (RrNodeId s : t.sinks) mix(s);
  }
  return h;
}

JobScheduler::JobScheduler(ArtifactCache& cache, std::size_t workers)
    : cache_(cache) {
  const std::size_t n = workers == 0 ? 1 : workers;
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

JobScheduler::~JobScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::future<FlowJobResult> JobScheduler::submit(FlowJob job) {
  std::packaged_task<FlowJobResult()> task(
      [this, job = std::move(job)]() mutable {
        FlowJobResult r = run_job(job, cache_);
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (r.ok) {
            ++counters_.completed;
          } else {
            ++counters_.failed;
          }
        }
        return r;
      });
  std::future<FlowJobResult> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      throw std::runtime_error("JobScheduler: submit after shutdown");
    }
    queue_.push_back(std::move(task));
    ++counters_.submitted;
  }
  cv_.notify_one();
  return fut;
}

JobScheduler::Counters JobScheduler::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

FlowJobResult JobScheduler::run_job(FlowJob& job, ArtifactCache& cache) {
  FlowJobResult r;
  r.name = std::move(job.name);
  const double t0 = wall_s();
  try {
    FlowOptions opt = job.opt;
    opt.artifact_cache = &cache;
    FlowResult flow = run_flow(std::move(job.netlist), opt);
    const RrGraphView gv = flow.graph_view();
    r.ok = true;
    r.nx = gv.nx();
    r.ny = gv.ny();
    r.w = flow.arch.W;
    r.route_iterations = flow.routing.iterations;
    r.overused_nodes = flow.routing.overused_nodes;
    r.tree_checksum = routing_tree_checksum(flow.routing);
    r.placement_cost = flow.placement.final_cost;
    r.critical_path_s = flow.routing.critical_path_s;
    r.counters = flow.routing.counters;
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
  }
  r.wall_s = wall_s() - t0;
  return r;
}

void JobScheduler::worker_loop() {
  // Pin a serial pool for this worker: the job's internal parallel_for
  // loops run serially (results are bit-identical at any thread count by
  // the repo-wide contract), job-level parallelism replaces loop-level
  // parallelism, and workers never oversubscribe the machine through the
  // global pool.
  ThreadPool serial(1);
  ThreadPool::ScopedUse use(serial);
  for (;;) {
    std::packaged_task<FlowJobResult()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace nemfpga
