// Concurrent flow scheduler — the stateless-workers-over-shared-caches
// half of flow-as-a-service. submit() queues a complete pack/place/route
// job and returns a future; a fixed pool of worker threads drains the
// queue, each running run_flow with the scheduler's shared ArtifactCache
// so concurrent jobs on the same architecture pay the RR/lookahead/
// delay-model build cost once.
//
// Determinism contract (pinned by tests/test_serve_tsan.cpp and
// tests/prop/prop_flow_cache.cpp): every job's result is bit-identical
// to a solo run_flow of the same (netlist, options), regardless of the
// worker count or what else is in flight. Three properties compose to
// guarantee it:
//   1. Jobs share no mutable state — only the content-addressed cache
//     of immutable artifacts, which are bit-identical to what a solo
//      flow would build (prop_flow_cache).
//   2. Each job's RNG streams derive only from its own options (the
//      placer forks per-move streams from opt.place.seed — PR 1), never
//      from scheduler state or submission order.
//   3. Each worker thread pins a serial ThreadPool over run_flow via
//      ThreadPool::ScopedUse (thread-local), so a job's internal
//      parallel_for runs serially — and the repo-wide contract is that
//      results are bit-identical at any thread count. Job-level
//      parallelism replaces loop-level parallelism; per-job Router
//      scratch arenas (PR 2) are worker-local by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/flow.hpp"
#include "service/artifact_cache.hpp"

namespace nemfpga {

/// One place-and-route request. `opt.artifact_cache` is overwritten with
/// the scheduler's shared cache; everything else is honored verbatim.
struct FlowJob {
  std::string name;  ///< Client label, echoed in the result.
  Netlist netlist;
  FlowOptions opt;
};

/// The scalar result surface of one job (the full FlowResult is a few
/// hundred MB of intermediate state; serve clients get the summary, and
/// the determinism suites compare exactly these fields plus the tree
/// checksum against a solo run_flow).
struct FlowJobResult {
  std::string name;
  bool ok = false;
  std::string error;  ///< Set when !ok (e.g. unroutable at the given W).
  std::size_t nx = 0, ny = 0;
  std::size_t w = 0;
  std::size_t route_iterations = 0;
  std::size_t overused_nodes = 0;
  /// FNV-1a over every route tree (source, edge list, sinks) — the
  /// routing identity function shared with bench/route_perf.
  std::uint64_t tree_checksum = 0;
  double placement_cost = 0.0;          ///< Placement::final_cost.
  double critical_path_s = 0.0;         ///< 0 unless timing_driven.
  RouteCounters counters;
  double wall_s = 0.0;                  ///< Worker wall, queue excluded.
};

class JobScheduler {
 public:
  struct Counters {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;  ///< ok results.
    std::uint64_t failed = 0;     ///< !ok results (flow threw).
  };

  /// `workers` threads drain the queue; the cache is borrowed and must
  /// outlive the scheduler.
  JobScheduler(ArtifactCache& cache, std::size_t workers);
  /// Drains the queue (every submitted future is satisfied) and joins.
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  std::future<FlowJobResult> submit(FlowJob job);

  std::size_t workers() const { return threads_.size(); }
  ArtifactCache& cache() { return cache_; }
  Counters counters() const;

 private:
  void worker_loop();
  static FlowJobResult run_job(FlowJob& job, ArtifactCache& cache);

  ArtifactCache& cache_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<FlowJobResult()>> queue_;
  bool stop_ = false;
  Counters counters_;
  std::vector<std::thread> threads_;
};

/// The shared routing identity: FNV-1a over every tree's source, edge
/// count, packed (from << 32 | to) edges and sink list. Identical to the
/// checksums bench/route_perf and bench/eco_perf report, so serve
/// results are directly comparable with bench baselines.
std::uint64_t routing_tree_checksum(const RoutingResult& r);

}  // namespace nemfpga
