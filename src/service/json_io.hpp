// Minimal JSON layer for the serve wire protocol: a flat-object parser
// (string / number / bool / null values — nested containers are
// rejected, the protocol never needs them) and a writer that emits the
// same bench-schema style the bench/ JSON reports use. Hand-rolled
// because the toolchain bakes in no JSON dependency and the protocol
// surface is a dozen scalar fields.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace nemfpga {

/// A parsed flat JSON value. `kind` selects the active field.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
};

/// Key -> value map of one flat JSON object, plus typed accessors with
/// defaults (the protocol treats absent and null alike).
struct JsonObject {
  std::map<std::string, JsonValue> fields;

  bool has(const std::string& key) const { return fields.count(key) != 0; }
  std::string get_string(const std::string& key,
                         const std::string& def = "") const;
  double get_number(const std::string& key, double def = 0.0) const;
  bool get_bool(const std::string& key, bool def = false) const;
};

/// Parse one flat JSON object. Throws std::runtime_error with a
/// position-annotated message on malformed input (including nested
/// objects/arrays, trailing garbage, or a non-object root).
JsonObject parse_json_object(const std::string& text);

/// Incremental writer for one flat JSON object (insertion order
/// preserved; strings escaped; doubles rendered %.17g round-trip exact).
class JsonWriter {
 public:
  JsonWriter& field(const std::string& key, const std::string& v);
  JsonWriter& field(const std::string& key, const char* v);
  JsonWriter& field(const std::string& key, double v);
  JsonWriter& field(const std::string& key, std::uint64_t v);
  JsonWriter& field(const std::string& key, bool v);

  /// The finished single-line object, e.g. {"ok":true,"w":64}.
  std::string str() const;

 private:
  JsonWriter& raw(const std::string& key, const std::string& rendered);
  std::string body_;
};

/// JSON string escaping (shared with the writer; exposed for tests).
std::string json_escape(const std::string& s);

}  // namespace nemfpga
