#include "service/json_io.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace nemfpga {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonObject parse() {
    JsonObject obj;
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
    } else {
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        skip_ws();
        obj.fields[key] = parse_value();
        skip_ws();
        const char c = next();
        if (c == '}') break;
        if (c != ',') fail("expected ',' or '}'");
      }
    }
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after object");
    return obj;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at offset " +
                             std::to_string(pos_));
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  char next() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_++];
  }
  void expect(char c) {
    if (next() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (c == '\\') {
        const char e = next();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          default: fail("unsupported escape");  // \uXXXX not needed here
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_value() {
    JsonValue v;
    const char c = peek();
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.str = parse_string();
    } else if (c == '{' || c == '[') {
      fail("nested containers are not part of the protocol");
    } else if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      v.kind = JsonValue::Kind::kBool;
      v.b = true;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      v.kind = JsonValue::Kind::kBool;
      v.b = false;
    } else if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      v.kind = JsonValue::Kind::kNull;
    } else {
      const char* start = s_.c_str() + pos_;
      char* end = nullptr;
      const double num = std::strtod(start, &end);
      if (end == start) fail("expected a value");
      pos_ += static_cast<std::size_t>(end - start);
      v.kind = JsonValue::Kind::kNumber;
      v.num = num;
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string JsonObject::get_string(const std::string& key,
                                   const std::string& def) const {
  const auto it = fields.find(key);
  if (it == fields.end() || it->second.kind != JsonValue::Kind::kString) {
    return def;
  }
  return it->second.str;
}

double JsonObject::get_number(const std::string& key, double def) const {
  const auto it = fields.find(key);
  if (it == fields.end() || it->second.kind != JsonValue::Kind::kNumber) {
    return def;
  }
  return it->second.num;
}

bool JsonObject::get_bool(const std::string& key, bool def) const {
  const auto it = fields.find(key);
  if (it == fields.end()) return def;
  if (it->second.kind == JsonValue::Kind::kBool) return it->second.b;
  if (it->second.kind == JsonValue::Kind::kNumber) {
    return it->second.num != 0.0;
  }
  return def;
}

JsonObject parse_json_object(const std::string& text) {
  return Parser(text).parse();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter& JsonWriter::raw(const std::string& key,
                            const std::string& rendered) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += json_escape(key);
  body_ += "\":";
  body_ += rendered;
  return *this;
}

JsonWriter& JsonWriter::field(const std::string& key, const std::string& v) {
  return raw(key, '"' + json_escape(v) + '"');
}

JsonWriter& JsonWriter::field(const std::string& key, const char* v) {
  return field(key, std::string(v));
}

JsonWriter& JsonWriter::field(const std::string& key, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return raw(key, buf);
}

JsonWriter& JsonWriter::field(const std::string& key, std::uint64_t v) {
  return raw(key, std::to_string(v));
}

JsonWriter& JsonWriter::field(const std::string& key, bool v) {
  return raw(key, v ? "true" : "false");
}

std::string JsonWriter::str() const { return '{' + body_ + '}'; }

}  // namespace nemfpga
