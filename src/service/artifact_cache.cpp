#include "service/artifact_cache.hpp"

#include <limits>

namespace nemfpga {

std::shared_ptr<const void> ArtifactCache::get_or_build_erased(
    const std::string& key, const ErasedBuild& build, bool* built) {
  if (built != nullptr) *built = false;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      // Claim the key under the lock: the insertion is the single-flight
      // election, so at most one builder per key ever runs.
      auto entry = std::make_shared<Entry>();
      entries_.emplace(key, entry);
      ++stats_.misses;
      lock.unlock();
      ErasedValue v;
      try {
        v = build();
      } catch (...) {
        lock.lock();
        ++stats_.failed_builds;
        entry->failed = true;
        // Drop the claim (only if the map still points at this claim —
        // clear() may have removed it already) so a retrying waiter can
        // become the next builder.
        auto cur = entries_.find(key);
        if (cur != entries_.end() && cur->second == entry) {
          entries_.erase(cur);
        }
        cv_.notify_all();
        throw;
      }
      lock.lock();
      entry->value = v.value;
      entry->bytes = v.bytes;
      entry->ready = true;
      entry->last_use = ++tick_;
      stats_.resident_bytes += v.bytes;
      ++stats_.entries;
      cv_.notify_all();
      if (built != nullptr) *built = true;
      evict_locked(key);
      return v.value;
    }
    std::shared_ptr<Entry> entry = it->second;
    if (entry->ready) {
      ++stats_.hits;
      entry->last_use = ++tick_;
      return entry->value;
    }
    // Build in flight: block until it resolves. On failure loop back —
    // the claim is gone, so this thread may become the next builder. The
    // wait IS this call's reuse event (hits count only the served-ready
    // path), so hits + single_flight_waits is the exact reuse total.
    ++stats_.single_flight_waits;
    cv_.wait(lock, [&] { return entry->ready || entry->failed; });
    if (entry->ready) {
      entry->last_use = ++tick_;
      return entry->value;
    }
  }
}

void ArtifactCache::evict_locked(const std::string& protect) {
  while (stats_.resident_bytes > max_bytes_) {
    auto victim = entries_.end();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second->ready) continue;  // Never evict in-flight builds.
      if (it->first == protect) continue;
      if (it->second->last_use < oldest) {
        oldest = it->second->last_use;
        victim = it;
      }
    }
    if (victim == entries_.end()) break;  // Nothing evictable left.
    stats_.resident_bytes -= victim->second->bytes;
    --stats_.entries;
    ++stats_.evictions;
    entries_.erase(victim);
  }
}

void ArtifactCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second->ready) {
      stats_.resident_bytes -= it->second->bytes;
      --stats_.entries;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace nemfpga
