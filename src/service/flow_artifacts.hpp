// Canonical cache keys and the cached-artifact bundle a flow needs
// before routing. The key rules encode exactly what each artifact is a
// function of — nothing more (over-keying silently halves the hit rate;
// the canonicalization unit tests in tests/test_artifact_cache.cpp pin
// both directions):
//
//   RrGraph / ImplicitRrGraph  ("rr/", "irr/")
//     every ArchParams field + grid (nx, ny). W, fc_in, fc_out and
//     dense_fanout all shape the node/edge set, so they key; so does
//     the switch-block pattern (sb_pattern, plus sb_custom_rot when
//     custom), which selects the turn edges.
//
//   RouteLookahead  ("la/")
//     the table is built over a thin canonical graph that OVERRIDES
//     W = 2L, fc = 1.0 and dense_fanout (src/arch/lookahead.cpp), so
//     those four fields are excluded: one table serves every channel
//     width and fc pattern of the same fabric — the property
//     find_min_channel_width has relied on since PR 4, now made
//     cache-visible so Wmin probes, run_flow and every serve job on the
//     fabric share one table. The delay-annotated twin additionally
//     keys on the two DelayProfile constants. The switch-block pattern
//     keys too (via the shared fabric prefix) even though the thin
//     graph's dense_fanout makes the table content pattern-independent:
//     no cached artifact may alias across patterns, and the admissible
//     superset argument stays a property of the builder, not of the
//     cache.
//
//   DelayModel  ("dm/")
//     node_delay is parallel to the RR node order, so the full arch +
//     grid keys, plus the registry name of the switch-technology
//     backend the ElectricalView is lowered from — no cached model may
//     alias across technologies. Flows overriding make_view's
//     tech/relay/downsize defaults must not use the shared cache
//     (run_flow never does).
//
// Doubles are rendered with %.17g (round-trip exact), so two ArchParams
// compare equal iff their key strings do.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "arch/lookahead.hpp"
#include "arch/rr_graph.hpp"
#include "route/route.hpp"
#include "service/artifact_cache.hpp"
#include "timing/delay_model.hpp"
#include "timing/variant.hpp"

namespace nemfpga {

std::string rr_graph_key(const ArchParams& arch, std::size_t nx,
                         std::size_t ny, RrBackend backend);
std::string lookahead_key(const ArchParams& arch, std::size_t nx,
                          std::size_t ny, const DelayProfile* delay);
std::string delay_model_key(const ArchParams& arch, std::size_t nx,
                            std::size_t ny, std::string_view backend);
/// Paper-variant convenience: keys on variant_backend_name(variant).
std::string delay_model_key(const ArchParams& arch, std::size_t nx,
                            std::size_t ny, FpgaVariant variant);

/// The pre-route immutable artifacts of one (arch, grid, options) tuple.
/// Exactly one of rr / irr is set, per RouteOptions::rr_backend — the
/// redundant explicit build for implicit-backend flows is gone (ISSUE 9
/// satellite); downstream consumers read through view().
struct FlowArtifacts {
  std::shared_ptr<const RrGraph> rr;
  std::shared_ptr<const ImplicitRrGraph> irr;
  std::shared_ptr<const RouteLookahead> lookahead;
  std::shared_ptr<const DelayModel> delay_model;
  /// Wall seconds THIS call spent building the lookahead (0 when it came
  /// out of the cache or another thread's in-flight build) — feeds
  /// RouteOptions::lookahead_build_s so RouteCounters accounting stays
  /// honest across cache hits.
  double lookahead_build_s = 0.0;
  bool lookahead_from_cache = false;
  bool rr_from_cache = false;
  bool delay_model_from_cache = false;

  RrGraphView view() const {
    return irr ? RrGraphView(*irr) : RrGraphView(*rr);
  }
};

/// Build (cache == nullptr) or fetch-or-build (cache != nullptr) the
/// artifacts `route_all` and the timing hook need for a flow over
/// (arch, nx, ny): the backend-selected RR graph, the lookahead table
/// when ropt.astar_factor > 0 and ropt.lookahead is unset, and the
/// delay model when ropt.timing_driven. The artifacts are bit-identical
/// either way — the cache only changes who pays the build.
FlowArtifacts make_flow_artifacts(ArtifactCache* cache,
                                  const ArchParams& arch, std::size_t nx,
                                  std::size_t ny, const RouteOptions& ropt,
                                  std::string_view timing_backend);

}  // namespace nemfpga
