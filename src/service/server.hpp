// `nemfpga serve` — the long-lived flow-as-a-service daemon. Clients
// connect over TCP (loopback) and exchange newline-delimited flat JSON
// objects in the bench-schema style:
//
//   -> {"op":"flow","id":1,"benchmark":"tseng","w":64,"timing":false}
//   -> {"op":"flow","id":2,"synth_luts":1000,"inputs":48,"outputs":48}
//   <- {"id":1,"ok":true,"w":64,"iterations":9,"tree_checksum":"0x...",...}
//   -> {"op":"stats"}
//   <- {"ok":true,"cache_hits":5,"cache_misses":2,...}
//   -> {"op":"shutdown"}
//
// Flow requests: "benchmark" names an MCNC/Pistorius catalog circuit, or
// "synth_luts" (+ optional "inputs"/"outputs"/"latches"/"locality")
// generates a synthetic one; "w" overrides the channel width, "seed" the
// placement seed, "timing" enables the timing-driven router, "variant"
// names a registered switch-technology backend (cmos / nem-naive /
// nem-opt / rram, with the legacy spellings nem and nem_opt still
// accepted), "sb_pattern" a switch-block pattern (wilton / subset /
// universal / custom). Responses come back in request order
// per connection while the jobs themselves run concurrently on the
// scheduler (pipelined clients get batch throughput; tree_checksum is a
// hex string because JSON numbers cannot carry 64 bits). Errors are
// {"ok":false,"error":...} — a malformed request never kills the
// connection, let alone the daemon.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/job_scheduler.hpp"
#include "service/json_io.hpp"

namespace nemfpga {

struct ServeOptions {
  std::uint16_t port = 0;  ///< 0 binds an ephemeral port (printed).
  std::size_t workers = 8;
  std::size_t cache_bytes = ArtifactCache::kDefaultMaxBytes;
  /// Architecture defaults for fields a job does not override.
  ArchParams arch;
  bool verbose = false;  ///< Per-request log lines on stdout.
};

/// Build a FlowJob from a parsed "op":"flow" request (exposed for the
/// CLI and tests). Throws std::runtime_error on an invalid spec.
FlowJob job_from_json(const JsonObject& o, const ServeOptions& defaults);

class ServeServer {
 public:
  /// Binds and listens on 127.0.0.1:opt.port immediately (so port() is
  /// valid before run()); throws std::runtime_error if binding fails.
  explicit ServeServer(const ServeOptions& opt);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  std::uint16_t port() const { return port_; }
  ArtifactCache& cache() { return cache_; }
  JobScheduler& scheduler() { return scheduler_; }

  /// Accept loop; returns after shutdown() (or a "shutdown" request)
  /// once every connection has drained.
  void run();
  /// Thread-safe stop: unblocks run().
  void shutdown();

  /// Process one request line synchronously and return the response
  /// line (no socket involved — the CLI fallback and the unit tests
  /// drive the protocol through this).
  std::string handle_request_line(const std::string& line);

  /// The stats response body (also printed by the CLI on exit).
  std::string stats_json();

 private:
  void connection_loop(int fd);

  ServeOptions opt_;
  ArtifactCache cache_;
  JobScheduler scheduler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> conns_;
};

}  // namespace nemfpga
