#include "service/flow_artifacts.hpp"

#include <cstdio>

#include "device/switch_tech.hpp"
#include "timing/variant.hpp"

namespace nemfpga {
namespace {

void append_double(std::string& s, const char* name, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), ",%s=%.17g", name, v);
  s += buf;
}

void append_size(std::string& s, const char* name, std::size_t v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), ",%s=%zu", name, v);
  s += buf;
}

/// The fabric fields every artifact keys on (grid + cluster/segment/
/// switch geometry). W / fc / dense_fanout are appended only by the
/// artifacts that depend on them.
std::string fabric_prefix(const ArchParams& a, std::size_t nx,
                          std::size_t ny) {
  std::string s;
  append_size(s, "N", a.N);
  append_size(s, "K", a.K);
  append_size(s, "L", a.L);
  append_size(s, "fs", a.fs);
  append_size(s, "iopp", a.io_per_pad);
  append_size(s, "nx", nx);
  append_size(s, "ny", ny);
  s += ",sb=";
  s += sb_pattern_name(a.sb_pattern);
  if (a.sb_pattern == SbPattern::kCustom) {
    append_size(s, "sbrot", a.sb_custom_rot);
  }
  return s;
}

void append_width_fields(std::string& s, const ArchParams& a) {
  append_size(s, "W", a.W);
  append_double(s, "fci", a.fc_in);
  append_double(s, "fco", a.fc_out);
  append_size(s, "dense", a.dense_fanout ? 1 : 0);
}

std::size_t delay_model_bytes(const DelayModel& m) {
  return sizeof(DelayModel) + m.node_delay.size() * sizeof(double);
}

}  // namespace

std::string rr_graph_key(const ArchParams& arch, std::size_t nx,
                         std::size_t ny, RrBackend backend) {
  std::string s = backend == RrBackend::kImplicit ? "irr/" : "rr/";
  s += fabric_prefix(arch, nx, ny);
  append_width_fields(s, arch);
  return s;
}

std::string lookahead_key(const ArchParams& arch, std::size_t nx,
                          std::size_t ny, const DelayProfile* delay) {
  std::string s = "la/";
  s += fabric_prefix(arch, nx, ny);
  if (delay != nullptr) {
    append_double(s, "tws", delay->t_wire_stage);
    append_double(s, "tip", delay->t_input_path);
  }
  return s;
}

std::string delay_model_key(const ArchParams& arch, std::size_t nx,
                            std::size_t ny, std::string_view backend) {
  std::string s = "dm/";
  s += fabric_prefix(arch, nx, ny);
  append_width_fields(s, arch);
  s += ",tech=";
  // Canonicalize through the registry so legacy alias spellings ("nem",
  // "nem_opt") share the canonical name's cache entry.
  s += switch_technology(backend).name();
  return s;
}

std::string delay_model_key(const ArchParams& arch, std::size_t nx,
                            std::size_t ny, FpgaVariant variant) {
  return delay_model_key(arch, nx, ny, variant_backend_name(variant));
}

FlowArtifacts make_flow_artifacts(ArtifactCache* cache,
                                  const ArchParams& arch, std::size_t nx,
                                  std::size_t ny, const RouteOptions& ropt,
                                  std::string_view timing_backend) {
  FlowArtifacts a;
  if (ropt.rr_backend == RrBackend::kImplicit) {
    const auto build = [&] {
      return std::make_shared<const ImplicitRrGraph>(arch, nx, ny);
    };
    if (cache != nullptr) {
      bool built = false;
      a.irr = cache->get_or_build<ImplicitRrGraph>(
          rr_graph_key(arch, nx, ny, RrBackend::kImplicit), build,
          [](const ImplicitRrGraph& g) { return g.memory_bytes(); }, &built);
      a.rr_from_cache = !built;
    } else {
      a.irr = build();
    }
  } else {
    const auto build = [&] {
      return std::make_shared<const RrGraph>(arch, nx, ny);
    };
    if (cache != nullptr) {
      bool built = false;
      a.rr = cache->get_or_build<RrGraph>(
          rr_graph_key(arch, nx, ny, RrBackend::kExplicit), build,
          [](const RrGraph& g) { return g.memory_bytes(); }, &built);
      a.rr_from_cache = !built;
    } else {
      a.rr = build();
    }
  }
  const RrGraphView gv = a.view();

  if (ropt.timing_driven) {
    const auto build = [&] {
      return std::make_shared<const DelayModel>(
          make_delay_model(gv, make_view(arch, timing_backend)));
    };
    if (cache != nullptr) {
      bool built = false;
      a.delay_model = cache->get_or_build<DelayModel>(
          delay_model_key(arch, nx, ny, timing_backend), build,
          delay_model_bytes, &built);
      a.delay_model_from_cache = !built;
    } else {
      a.delay_model = build();
    }
  }

  if (ropt.astar_factor > 0.0 && !ropt.lookahead) {
    const DelayProfile* prof =
        a.delay_model ? &a.delay_model->profile : nullptr;
    const auto build = [&] {
      return std::make_shared<const RouteLookahead>(gv, prof);
    };
    if (cache != nullptr) {
      bool built = false;
      a.lookahead = cache->get_or_build<RouteLookahead>(
          lookahead_key(arch, nx, ny, prof), build,
          [](const RouteLookahead& la) { return la.memory_bytes(); },
          &built);
      a.lookahead_from_cache = !built;
      if (built) a.lookahead_build_s = a.lookahead->build_seconds();
    } else {
      a.lookahead = build();
      a.lookahead_build_s = a.lookahead->build_seconds();
    }
  }
  return a;
}

}  // namespace nemfpga
