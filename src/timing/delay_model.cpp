#include "timing/delay_model.hpp"

#include <algorithm>

namespace nemfpga {

DelayModel make_delay_model(const RrGraphView& g, const ElectricalView& view) {
  DelayModel m;
  m.profile = {view.t_wire_stage, view.t_input_path};
  m.t_source = view.t_output_path;
  m.sec_per_base =
      view.t_wire_stage /
      static_cast<double>(std::max<std::size_t>(1, g.arch().L));
  const std::size_t n = g.node_count();
  m.node_delay.resize(n);
  for (RrNodeId i = 0; i < n; ++i) {
    m.node_delay[i] = route_delay_cost(g.node(i), m.profile);
  }
  return m;
}

}  // namespace nemfpga
