// Electrical views of an FPGA fabric under a switch technology.
//
// The paper compares three implementations of the same packed/placed/
// routed design (Sec 3.4); those are now three names in the
// switch-technology backend registry (device/switch_tech.hpp):
//
//   "cmos"      : NMOS pass-transistor switches + SRAM, half-latch
//                 restoring buffers everywhere (Fig 3a / Fig 8a).
//   "nem-naive" : NEM relays replace every routing switch and its SRAM
//                 cell ([Chen 10b]); buffers keep their CMOS sizes.
//   "nem-opt"   : relays + the paper's technique — LB input/output
//                 buffers removed, wire buffers downsized (Sec 3.2).
//
// plus any other registered backend ("rram", ...). The FpgaVariant enum
// survives purely as an alias for the three paper variants; the
// enum-taking make_view overload forwards to the registry.
//
// make_view() derives a self-consistent view: tile area -> tile pitch ->
// wire loads -> buffer sizes -> buffer areas -> tile area (iterated to a
// fixed point, mirroring the paper's layout/extraction loop of Fig 10).
#pragma once

#include <string>
#include <string_view>

#include "arch/arch_model.hpp"
#include "arch/params.hpp"
#include "circuit/buffer.hpp"
#include "device/equivalent.hpp"
#include "device/switch_tech.hpp"

namespace nemfpga {

/// The three fabric implementations the paper compares, as registry
/// aliases (see variant_backend_name).
enum class FpgaVariant { kCmosBaseline, kNemNaive, kNemOptimized };

/// Registry name of a paper variant: "cmos" / "nem-naive" / "nem-opt".
constexpr std::string_view variant_backend_name(FpgaVariant v) {
  switch (v) {
    case FpgaVariant::kNemNaive: return "nem-naive";
    case FpgaVariant::kNemOptimized: return "nem-opt";
    case FpgaVariant::kCmosBaseline: break;
  }
  return "cmos";
}

/// Fully derived electrical/physical view of one fabric implementation.
struct ElectricalView {
  /// Registry name of the switch technology this view was derived for.
  std::string backend = "cmos";
  ArchParams arch;
  Tech22nm tech;
  RelayEquivalent relay;  ///< Used by the NEM backends.
  double wire_buffer_downsize = 1.0;

  // Derived physicals.
  TileComposition composition;
  TileArea area;
  double tile_pitch = 0.0;  ///< [m]

  SwitchElectrical sw;      ///< Routing switch figures for this fabric.
  /// Standby leakage [W] per routing configuration bit (SRAM cell for
  /// volatile backends, 0 for mechanical/nonvolatile state).
  double config_leak_per_bit = 0.0;

  // Sized buffers (chains absent in a backend have empty stage_mults).
  RoutingBuffer wire_buffer;
  RoutingBuffer lb_input_buffer;
  RoutingBuffer lb_output_buffer;
  bool lb_buffers_present = true;

  // Precomputed loads [F].
  double c_wire_segment = 0.0;   ///< Total load one wire driver drives.
  double c_lb_input_path = 0.0;  ///< Load past the CB tap into the LB.
  double c_lb_output_path = 0.0; ///< Load the BLE output drives to OPIN.

  // Precomputed delays [s].
  double t_wire_stage = 0.0;     ///< One buffered wire segment, driver in.
  double t_input_path = 0.0;     ///< CB tap -> crossbar -> LUT input.
  double t_output_path = 0.0;    ///< LUT/FF output -> wire driver mux input.
  double t_lut = 0.0;            ///< LUT input -> output.
  double t_local_feedback = 0.0; ///< Intra-cluster BLE -> BLE connection.
  double t_clk_q = 0.0;
  double t_setup = 0.0;
};

/// Build a self-consistent electrical view from a registered backend.
/// `wire_buffer_downsize` must lie in the paper's [1, 8] sweep range and
/// may differ from 1.0 only on a backend whose buffer policy supports
/// wire downsizing ("nem-opt"); anything else throws std::invalid_argument
/// with a named-parameter message (no silent clamping).
ElectricalView make_view(const ArchParams& arch,
                         const SwitchTechnology& backend,
                         double wire_buffer_downsize = 1.0,
                         const Tech22nm& tech = default_tech22(),
                         const RelayEquivalent& relay = fig11_equivalent());

/// Registry-name convenience: make_view(arch, switch_technology(name), ...).
ElectricalView make_view(const ArchParams& arch, std::string_view backend,
                         double wire_buffer_downsize = 1.0,
                         const Tech22nm& tech = default_tech22(),
                         const RelayEquivalent& relay = fig11_equivalent());

/// Paper-variant convenience (the pre-registry call shape).
ElectricalView make_view(const ArchParams& arch, FpgaVariant variant,
                         double wire_buffer_downsize = 1.0,
                         const Tech22nm& tech = default_tech22(),
                         const RelayEquivalent& relay = fig11_equivalent());

}  // namespace nemfpga
