// Electrical views of the three FPGA implementations the paper compares
// (Sec 3.4): the same packed/placed/routed design is re-analyzed under
// different circuit models —
//
//   kCmosBaseline : NMOS pass-transistor switches + SRAM, half-latch
//                   restoring buffers everywhere (Fig 3a / Fig 8a).
//   kNemNaive     : NEM relays replace every routing switch and its SRAM
//                   cell ([Chen 10b]); buffers keep their CMOS sizes.
//   kNemOptimized : relays + the paper's technique — LB input/output
//                   buffers removed, wire buffers downsized (Sec 3.2).
//
// make_view() derives a self-consistent view: tile area -> tile pitch ->
// wire loads -> buffer sizes -> buffer areas -> tile area (iterated to a
// fixed point, mirroring the paper's layout/extraction loop of Fig 10).
#pragma once

#include "arch/arch_model.hpp"
#include "arch/params.hpp"
#include "circuit/buffer.hpp"
#include "device/equivalent.hpp"

namespace nemfpga {

enum class FpgaVariant { kCmosBaseline, kNemNaive, kNemOptimized };

/// Per-switch electrical figures as seen by the routing network.
struct SwitchElectrical {
  double r_on = 0.0;       ///< Series resistance when configured on [Ohm].
  double c_off_load = 0.0; ///< Capacitive load of an off switch tap [F].
  double c_on_load = 0.0;  ///< Parasitic of an on switch [F].
  double leak_per_switch = 0.0;  ///< Off-state leakage current [A].
};

/// Fully derived electrical/physical view of one FPGA variant.
struct ElectricalView {
  FpgaVariant variant = FpgaVariant::kCmosBaseline;
  ArchParams arch;
  Tech22nm tech;
  RelayEquivalent relay;  ///< Used by the NEM variants.
  double wire_buffer_downsize = 1.0;

  // Derived physicals.
  TileComposition composition;
  TileArea area;
  double tile_pitch = 0.0;  ///< [m]

  SwitchElectrical sw;      ///< Routing switch figures for this fabric.

  // Sized buffers (chains absent in a variant have empty stage_mults).
  RoutingBuffer wire_buffer;
  RoutingBuffer lb_input_buffer;
  RoutingBuffer lb_output_buffer;
  bool lb_buffers_present = true;

  // Precomputed loads [F].
  double c_wire_segment = 0.0;   ///< Total load one wire driver drives.
  double c_lb_input_path = 0.0;  ///< Load past the CB tap into the LB.
  double c_lb_output_path = 0.0; ///< Load the BLE output drives to OPIN.

  // Precomputed delays [s].
  double t_wire_stage = 0.0;     ///< One buffered wire segment, driver in.
  double t_input_path = 0.0;     ///< CB tap -> crossbar -> LUT input.
  double t_output_path = 0.0;    ///< LUT/FF output -> wire driver mux input.
  double t_lut = 0.0;            ///< LUT input -> output.
  double t_local_feedback = 0.0; ///< Intra-cluster BLE -> BLE connection.
  double t_clk_q = 0.0;
  double t_setup = 0.0;
};

/// Build a self-consistent electrical view of the variant.
/// `wire_buffer_downsize` only applies to kNemOptimized (1..8, the paper's
/// pretend-load sweep).
ElectricalView make_view(const ArchParams& arch, FpgaVariant variant,
                         double wire_buffer_downsize = 1.0,
                         const Tech22nm& tech = default_tech22(),
                         const RelayEquivalent& relay = fig11_equivalent());

}  // namespace nemfpga
