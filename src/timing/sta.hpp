// Static timing analysis over the packed/placed/routed design — the
// "VPR timing analysis" box of the paper's Fig 10 flow. Net delays come
// from the routed RR trees evaluated under a variant's electrical view;
// logic delays from the view's LUT/FF constants. The application critical
// path is the max register-to-register / PI-to-PO path delay.
#pragma once

#include <memory>
#include <vector>

#include "arch/rr_graph.hpp"
#include "netlist/netlist.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "timing/delay_model.hpp"
#include "timing/variant.hpp"

namespace nemfpga {

/// Reusable per-node delay store for routed_net_delays: an epoch-stamped
/// flat array shared across all nets of a timing run (same pattern as the
/// router's scratch arena), so evaluating a net costs zero heap
/// allocations after the first call. Safe to keep alive indefinitely and
/// across fabrics: the arrays re-zero whenever the node count changes
/// (ECO sessions can shrink or grow the graph between evaluations) and
/// when the 32-bit epoch counter would wrap — a wrapped counter re-hitting
/// 0 would alias the freshly zeroed stamps and read garbage as "known".
struct NetDelayScratch {
  std::vector<double> delay;
  std::vector<std::uint32_t> epoch;
  std::uint32_t cur = 0;
};

/// Delay from a routed net's driver to each of its sink *blocks*,
/// parallel to PlacedNet::sinks. Appends into `out` (cleared first).
void routed_net_delays(const RrGraphView& g, const RouteTree& tree,
                       const PlacedNet& net, const Placement& pl,
                       const ElectricalView& view, NetDelayScratch& scratch,
                       std::vector<double>& out);

/// Convenience wrapper with one-shot scratch (tests, single-net callers).
std::vector<double> routed_net_delays(const RrGraphView& g,
                                      const RouteTree& tree,
                                      const PlacedNet& net,
                                      const Placement& pl,
                                      const ElectricalView& view);

struct TimingResult {
  double critical_path = 0.0;     ///< [s]
  double geomean_net_delay = 0.0; ///< Over routed nets (diagnostics).
  std::vector<double> arrival;    ///< Per netlist block output [s].
};

/// Full-design STA. The routing must be successful and correspond to `pl`.
/// Backend-agnostic: pass an RrGraph or an ImplicitRrGraph via the view.
TimingResult analyze_timing(const Netlist& nl, const Packing& pack,
                            const Placement& pl, const RrGraphView& g,
                            const RoutingResult& routing,
                            const ElectricalView& view);

/// Incremental STA as a router timing hook (the production implementation
/// of route::RouterTimingHook): per-connection criticalities fed back to
/// the timing-driven PathFinder every iteration, re-evaluating only the
/// nets the previous iteration ripped up and propagating arrival /
/// downstream-delay changes through epoch-stamped levelized updates. The
/// propagated state is bit-identical to a full recompute (every touched
/// block is fully re-evaluated from its fan-in, and max is
/// order-independent), which tests/prop/prop_sta_incremental.cpp checks
/// against a naive full-recompute oracle. `view` is copied; nl / pack /
/// pl must outlive the hook. One route_all call per instance.
std::unique_ptr<RouterTimingHook> make_incremental_sta(
    const Netlist& nl, const Packing& pack, const Placement& pl,
    const RrGraphView& g, const ElectricalView& view, double criticality_exp,
    double max_criticality);

/// Same, but sharing a prebuilt delay model (the artifact cache's —
/// src/service/flow_artifacts.hpp) instead of lowering one from `view`
/// per hook. `model` must be the make_delay_model(g, view) of the same
/// (g, view) pair (bit-identical numbers, so the hook's behavior is
/// too); null falls back to building it internally.
std::unique_ptr<RouterTimingHook> make_incremental_sta(
    const Netlist& nl, const Packing& pack, const Placement& pl,
    const RrGraphView& g, const ElectricalView& view, double criticality_exp,
    double max_criticality, std::shared_ptr<const DelayModel> model);

}  // namespace nemfpga
