// Shared criticality shaping — the single formula every consumer of a
// slack uses (timing-driven placement, the timing-driven router's cost
// blend, the incremental STA and the verify oracles). VPR's classic
// definition: crit = (1 - slack / d_max), clamped into [0, max_crit] and
// sharpened by an exponent so near-critical connections dominate the
// blend while slack-rich ones stay congestion-driven.
//
// Header-only on purpose: placement sits below timing in the library
// graph (nf_place cannot link nf_timing), but both must share one source
// of truth for the formula.
#pragma once

#include <algorithm>
#include <cmath>

namespace nemfpga {

/// Shape an already-normalized criticality value into [0, max_crit] with
/// the sharpening exponent. The pow is skipped at exponent 1 so the
/// default path stays a pure clamp (bit-compatible with the historical
/// placement formula).
inline double shaped_criticality(double crit, double max_crit = 1.0,
                                 double crit_exp = 1.0) {
  double c = std::clamp(crit, 0.0, max_crit);
  if (crit_exp != 1.0) c = std::pow(c, crit_exp);
  return c;
}

/// Criticality of a connection with the given slack under a critical path
/// of d_max: clamp(1 - slack / d_max) ^ crit_exp. d_max <= 0 (no timed
/// paths at all) makes every connection non-critical.
inline double criticality_from_slack(double slack, double d_max,
                                     double max_crit = 1.0,
                                     double crit_exp = 1.0) {
  if (d_max <= 0.0) return 0.0;
  return shaped_criticality(1.0 - slack / d_max, max_crit, crit_exp);
}

}  // namespace nemfpga
