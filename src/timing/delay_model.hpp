// The unified delay layer: one place that turns the active electrical
// view (relay Ron/Con vs NMOS pass gate, Sec 3 of the paper) into the
// per-RR-node delays every timing consumer shares — the incremental STA
// seeds net delays from them (via routed_net_delays), the timing-driven
// PathFinder charges them in its blended cost, and the delay-annotated
// lookahead table lower-bounds them for directed search. Before this
// layer the flow carried three disconnected delay models (placement
// proxy, router base costs, post-route STA); now the router and STA
// literally read the same numbers.
#pragma once

#include <vector>

#include "arch/lookahead.hpp"
#include "arch/rr_graph.hpp"
#include "timing/variant.hpp"

namespace nemfpga {

/// Per-RR-node delays of one (graph, electrical view) pair.
struct DelayModel {
  /// Delay of *entering* each node [s] (parallel to the RR graph):
  /// CHANX/CHANY pay one buffered wire stage, IPIN pays the connection
  /// box + crossbar input path, everything else is free — exactly the
  /// accumulation routed_net_delays performs, so a tree's delay is
  /// t_source + sum(node_delay over the tree path).
  std::vector<double> node_delay;
  /// Constant source stage (LUT/FF output -> wire driver mux input).
  /// Identical for every path of a net, so the router omits it from the
  /// search and the STA adds it when evaluating routed trees.
  double t_source = 0.0;
  /// Seconds one unit of router base cost is worth: the units bridge of
  /// the blended cost crit * delay + (1 - crit) * congestion * spb.
  /// Chosen as t_wire_stage / L so a full-length wire's congestion cost
  /// equals its delay and the two blend halves share a scale.
  double sec_per_base = 0.0;
  /// The two constants the delay-annotated lookahead table needs.
  DelayProfile profile;
};

/// Derive the delay model of `view` over `g`.
DelayModel make_delay_model(const RrGraphView& g, const ElectricalView& view);

}  // namespace nemfpga
