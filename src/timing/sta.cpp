#include "timing/sta.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "timing/criticality.hpp"
#include "timing/delay_model.hpp"
#include "verify/check.hpp"

namespace nemfpga {

void routed_net_delays(const RrGraphView& g, const RouteTree& tree,
                       const PlacedNet& net, const Placement& pl,
                       const ElectricalView& view, NetDelayScratch& scratch,
                       std::vector<double>& out) {
  // Re-zero on fabric-shape change (ECO can shrink or grow the graph
  // between evaluations) and on impending epoch wrap: ++cur rolling over
  // to 0 would alias the zero-initialized stamps, turning every
  // never-stamped node into a false "known" with a garbage delay.
  if (scratch.epoch.size() != g.node_count() ||
      scratch.cur == std::numeric_limits<std::uint32_t>::max()) {
    scratch.epoch.assign(g.node_count(), 0);
    scratch.delay.assign(g.node_count(), 0.0);
    scratch.cur = 0;
  }
  const std::uint32_t cur = ++scratch.cur;
  auto known = [&](RrNodeId id) { return scratch.epoch[id] == cur; };
  scratch.epoch[tree.source] = cur;
  scratch.delay[tree.source] = view.t_output_path;
  for (const auto& [from, to] : tree.edges) {
    if (!known(from)) {
      throw std::logic_error("routed_net_delays: edge from unknown node");
    }
    double d = scratch.delay[from];
    switch (g.node(to).type) {
      case RrType::kChanX:
      case RrType::kChanY:
        d += view.t_wire_stage;
        break;
      case RrType::kIpin:
        d += view.t_input_path;
        break;
      default:
        break;  // OPIN / SINK add no additional stage
    }
    // Keep the earliest (tree order guarantees a single write in practice).
    if (!known(to)) {
      scratch.epoch[to] = cur;
      scratch.delay[to] = d;
    }
  }
  out.clear();
  out.reserve(net.sinks.size());
  for (std::size_t s : net.sinks) {
    const BlockLoc& l = pl.locs[s];
    const RrNodeId sink = g.site(l.x, l.y).sink;
    if (!known(sink)) {
      throw std::logic_error("routed_net_delays: sink not in tree");
    }
    out.push_back(scratch.delay[sink]);
  }
}

std::vector<double> routed_net_delays(const RrGraphView& g,
                                      const RouteTree& tree,
                                      const PlacedNet& net,
                                      const Placement& pl,
                                      const ElectricalView& view) {
  NetDelayScratch scratch;
  std::vector<double> out;
  routed_net_delays(g, tree, net, pl, view, scratch, out);
  return out;
}

TimingResult analyze_timing(const Netlist& nl, const Packing& pack,
                            const Placement& pl, const RrGraphView& g,
                            const RoutingResult& routing,
                            const ElectricalView& view) {
  if (routing.trees.size() != pl.nets.size()) {
    throw std::invalid_argument("analyze_timing: routing/placement mismatch");
  }

  // Per placed net: delay to each sink packed-block.
  std::vector<std::size_t> net_to_placed(nl.net_count(), kInvalidId);
  std::vector<std::unordered_map<std::size_t, double>> sink_delay(
      pl.nets.size());
  double log_sum = 0.0;
  std::size_t n_delays = 0;
  NetDelayScratch scratch;  // one allocation for the whole run
  std::vector<double> delays;
  for (std::size_t i = 0; i < pl.nets.size(); ++i) {
    net_to_placed[pl.nets[i].net] = i;
    routed_net_delays(g, routing.trees[i], pl.nets[i], pl, view, scratch,
                      delays);
    for (std::size_t s = 0; s < delays.size(); ++s) {
      sink_delay[i].emplace(pl.nets[i].sinks[s], delays[s]);
      if (delays[s] > 0.0) {
        log_sum += std::log(delays[s]);
        ++n_delays;
      }
    }
  }

  // Net arc delay from a driven net into a consuming block.
  auto net_arc = [&](NetId n, BlockId sink_blk) {
    const std::size_t placed = net_to_placed[n];
    if (placed == kInvalidId) {
      // Absorbed: intra-BLE (LUT->FF) is hard-wired, intra-cluster goes
      // through the local feedback crossbar.
      const Net& net = nl.net(n);
      if (net.sinks.size() == 1) {
        const Block& s = nl.block(net.sinks[0]);
        const Block& d = nl.block(net.driver);
        if (s.type == BlockType::kLatch && d.type == BlockType::kLut) {
          return 0.0;  // fused BLE register
        }
      }
      return view.t_local_feedback;
    }
    const std::size_t owner = pack.block_owner[sink_blk];
    const auto it = sink_delay[placed].find(owner);
    if (it != sink_delay[placed].end()) return it->second;
    // Same-cluster sink of a global net: local feedback.
    return view.t_local_feedback;
  };

  // Topological arrival-time propagation over combinational LUT edges.
  TimingResult result;
  result.arrival.assign(nl.block_count(), 0.0);
  std::vector<std::size_t> pending(nl.block_count(), 0);
  std::deque<BlockId> ready;
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const Block& blk = nl.block(b);
    if (blk.type == BlockType::kInput) {
      result.arrival[b] = 0.0;
      ready.push_back(b);
    } else if (blk.type == BlockType::kLatch) {
      result.arrival[b] = view.t_clk_q;
      ready.push_back(b);
    } else if (blk.type == BlockType::kLut) {
      std::size_t comb_inputs = 0;
      for (NetId n : blk.inputs) {
        if (nl.block(nl.net(n).driver).type == BlockType::kLut) ++comb_inputs;
      }
      pending[b] = comb_inputs;
      if (comb_inputs == 0) ready.push_back(b);
    }
  }

  std::size_t processed_luts = 0;
  while (!ready.empty()) {
    const BlockId b = ready.front();
    ready.pop_front();
    const Block& blk = nl.block(b);
    if (blk.type == BlockType::kLut) {
      double arr = 0.0;
      for (NetId n : blk.inputs) {
        const BlockId drv = nl.net(n).driver;
        arr = std::max(arr, result.arrival[drv] + net_arc(n, b));
      }
      result.arrival[b] = arr + view.t_lut;
      ++processed_luts;
    }
    // Release combinational fanout. Only LUT drivers were counted in
    // `pending` (PIs and latch outputs are timing start points), so only
    // LUT completions may decrement it.
    if (blk.type == BlockType::kLut) {
      for (BlockId s : nl.net(blk.output).sinks) {
        if (nl.block(s).type == BlockType::kLut && pending[s] > 0) {
          if (--pending[s] == 0) ready.push_back(s);
        }
      }
    }
  }
  if (processed_luts != nl.lut_count()) {
    throw std::logic_error("analyze_timing: combinational cycle");
  }

  // Critical path: worst capture at latch D inputs and primary outputs.
  double cp = 0.0;
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const Block& blk = nl.block(b);
    if (blk.type == BlockType::kLatch) {
      const NetId d = blk.inputs[0];
      const BlockId drv = nl.net(d).driver;
      cp = std::max(cp, result.arrival[drv] + net_arc(d, b) + view.t_setup);
    } else if (blk.type == BlockType::kOutput) {
      const NetId n = blk.inputs[0];
      const BlockId drv = nl.net(n).driver;
      cp = std::max(cp, result.arrival[drv] + net_arc(n, b));
    }
  }
  result.critical_path = cp;
  result.geomean_net_delay =
      n_delays ? std::exp(log_sum / static_cast<double>(n_delays)) : 0.0;
  // Invariant hook (NF_CHECK_INVARIANTS): the topological pass above
  // already proved acyclicity by count; additionally every arrival time
  // must be finite and non-negative, and the critical path must dominate
  // every individual arrival's logic component.
  if (verify::checks_enabled()) {
    for (BlockId b = 0; b < nl.block_count(); ++b) {
      const double a = result.arrival[b];
      if (!std::isfinite(a) || a < 0.0) {
        throw std::logic_error("analyze_timing: non-finite/negative arrival");
      }
    }
    if (!std::isfinite(result.critical_path) || result.critical_path < 0.0) {
      throw std::logic_error("analyze_timing: bad critical path");
    }
  }
  return result;
}

namespace {

/// The production RouterTimingHook: analyze_timing's arrival model made
/// incremental. State per netlist block:
///   arr[b]   — output arrival time (analyze_timing semantics exactly:
///              PI = 0, latch Q = t_clk_q, LUT = max fan-in + t_lut);
///   down[b]  — longest downstream delay from b's output pin to any
///              timing endpoint through combinational logic only
///              (the required-time recurrence rewritten so d_max does not
///              appear in it — required = d_max - down — which is what
///              makes it incrementally maintainable: a changed net delay
///              never invalidates the whole backward array just because
///              the critical path moved).
/// When net n is re-routed only the arcs of n change, so exactly n's LUT
/// sinks (forward) and n's driver (backward) can change, and changes
/// propagate along combinational edges only. Blocks are re-evaluated in
/// LUT-level order (forward ascending, backward descending) via
/// epoch-stamped buckets; every touched block is *fully* recomputed from
/// its current fan-in/fan-out, so the result is independent of which nets
/// were dirty — bit-identical to a full recompute.
class IncrementalSta final : public RouterTimingHook {
 public:
  IncrementalSta(const Netlist& nl, const Packing& pack, const Placement& pl,
                 const RrGraphView& g, const ElectricalView& view,
                 double criticality_exp, double max_criticality,
                 std::shared_ptr<const DelayModel> model)
      : nl_(nl),
        pack_(pack),
        pl_(pl),
        view_(view),
        model_(model ? std::move(model)
                     : std::make_shared<const DelayModel>(
                           make_delay_model(g, view))),
        crit_exp_(criticality_exp),
        max_crit_(max_criticality) {
    const std::size_t blocks = nl.block_count();

    net_to_placed_.assign(nl.net_count(), kInvalidId);
    for (std::size_t i = 0; i < pl.nets.size(); ++i) {
      net_to_placed_[pl.nets[i].net] = i;
    }
    sink_delay_.resize(pl.nets.size());

    // Connection CSR: each (net, sink_slot) of the placed netlist maps to
    // the netlist sink blocks it carries (the slot's packed block may
    // absorb several LUT/latch/PO consumers).
    slot_base_.assign(pl.nets.size() + 1, 0);
    for (std::size_t i = 0; i < pl.nets.size(); ++i) {
      slot_base_[i + 1] = slot_base_[i] + pl.nets[i].sinks.size();
    }
    const std::size_t slots = slot_base_.back();
    crit_.assign(slots, 0.0);
    conn_off_.assign(slots + 1, 0);
    for (std::size_t i = 0; i < pl.nets.size(); ++i) {
      const PlacedNet& pn = pl.nets[i];
      for (BlockId s : nl.net(pn.net).sinks) {
        const std::size_t owner = pack.block_owner[s];
        if (owner == pn.driver) continue;  // local feedback, not routed
        const std::size_t j = slot_of(pn, owner);
        ++conn_off_[slot_base_[i] + j + 1];
      }
    }
    for (std::size_t k = 1; k <= slots; ++k) conn_off_[k] += conn_off_[k - 1];
    conn_sink_.resize(conn_off_.back());
    {
      std::vector<std::uint32_t> fill(conn_off_.begin(), conn_off_.end() - 1);
      for (std::size_t i = 0; i < pl.nets.size(); ++i) {
        const PlacedNet& pn = pl.nets[i];
        for (BlockId s : nl.net(pn.net).sinks) {
          const std::size_t owner = pack.block_owner[s];
          if (owner == pn.driver) continue;
          const std::size_t j = slot_of(pn, owner);
          conn_sink_[fill[slot_base_[i] + j]++] = s;
        }
      }
    }

    // LUT levels (1 + max combinational fan-in level; non-LUT = 0) for
    // the bucketed propagation order, via the same ready-stack topo pass
    // the rest of the flow uses.
    level_.assign(blocks, 0);
    std::vector<std::size_t> pending(blocks, 0);
    std::vector<BlockId> ready;
    for (BlockId b = 0; b < blocks; ++b) {
      const Block& blk = nl.block(b);
      if (blk.type != BlockType::kLut) continue;
      std::size_t comb = 0;
      for (NetId n : blk.inputs) {
        if (nl.block(nl.net(n).driver).type == BlockType::kLut) ++comb;
      }
      pending[b] = comb;
      if (comb == 0) ready.push_back(b);
    }
    std::size_t max_level = 0;
    while (!ready.empty()) {
      const BlockId b = ready.back();
      ready.pop_back();
      const Block& blk = nl.block(b);
      std::size_t lv = 1;
      for (NetId n : blk.inputs) {
        const BlockId d = nl.net(n).driver;
        if (nl.block(d).type == BlockType::kLut) {
          lv = std::max(lv, level_[d] + 1);
        }
      }
      level_[b] = lv;
      max_level = std::max(max_level, lv);
      for (BlockId sk : nl.net(blk.output).sinks) {
        if (nl.block(sk).type == BlockType::kLut && pending[sk] > 0) {
          if (--pending[sk] == 0) ready.push_back(sk);
        }
      }
    }
    fwd_bucket_.resize(max_level + 1);
    bwd_bucket_.resize(max_level + 1);
    fwd_stamp_.assign(blocks, 0);
    bwd_stamp_.assign(blocks, 0);
    net_stamp_.assign(pl.nets.size(), 0);

    arr_.assign(blocks, 0.0);
    down_.assign(blocks, 0.0);
    for (BlockId b = 0; b < blocks; ++b) {
      if (nl.block(b).type == BlockType::kLatch) arr_[b] = view.t_clk_q;
    }
  }

  const double* node_delay() const override {
    return model_->node_delay.data();
  }
  double sec_per_base() const override { return model_->sec_per_base; }
  DelayProfile delay_profile() const override { return model_->profile; }

  void update(const RrGraphView& g, const std::vector<RouteTree>& trees,
              const std::vector<std::size_t>& dirty,
              std::size_t iteration) override {
    // The connection CSR, level order and slot bases were all baked from
    // the netlist/packing/placement shape at construction. Under ECO
    // those can change between routing sessions, so a stale hook would
    // silently mis-map criticalities; refuse loudly instead. (The pin
    // count catches connect/disconnect edits that leave every count the
    // ECO layer tracks unchanged.)
    if (trees.size() != pl_.nets.size() ||
        nl_.block_count() != blocks_at_build_ ||
        nl_.net_count() != nets_at_build_ ||
        total_pins(nl_) != pins_at_build_) {
      throw std::logic_error(
          "IncrementalSta: design shape changed under the hook; construct "
          "a new hook per netlist delta");
    }
    if (iteration <= 1) {
      // No routed trees yet: seed criticalities from the placement-based
      // estimate the timing-driven annealer uses, shaped the same way the
      // routed criticalities will be.
      if (seed_crit_.empty()) {
        seed_crit_ = placement_net_criticality(nl_, pl_.nets, pl_.locs);
        for (double& c : seed_crit_) {
          c = shaped_criticality(c, max_crit_, crit_exp_);
        }
      }
      return;
    }

    ++epoch_;
    // The first real update establishes the whole timing state; after
    // that only the dirty nets' fan-out cones are touched.
    const bool full = !have_timing_;
    auto refresh_net = [&](std::size_t i) {
      routed_net_delays(g, trees[i], pl_.nets[i], pl_, view_, scratch_,
                        sink_delay_[i]);
      ++net_evals_;
      // Forward: the changed arcs feed this net's combinational sinks.
      for (std::uint32_t k = conn_off_[slot_base_[i]];
           k < conn_off_[slot_base_[i + 1]]; ++k) {
        const BlockId s = conn_sink_[k];
        if (nl_.block(s).type == BlockType::kLut) enqueue_fwd(s);
      }
      // Backward: they also appear in the driver's downstream delay.
      enqueue_bwd(nl_.net(pl_.nets[i].net).driver);
    };
    if (full) {
      for (std::size_t i = 0; i < pl_.nets.size(); ++i) refresh_net(i);
      for (BlockId b = 0; b < nl_.block_count(); ++b) {
        if (nl_.block(b).type == BlockType::kLut) enqueue_fwd(b);
        if (nl_.block(b).output != kInvalidId) enqueue_bwd(b);
      }
      have_timing_ = true;
    } else {
      for (std::size_t i : dirty) {
        if (net_stamp_[i] == epoch_) continue;  // tolerate duplicates
        net_stamp_[i] = epoch_;
        refresh_net(i);
      }
    }

    // Forward arrival propagation, LUT-level ascending (a LUT's
    // combinational sinks always sit at a strictly higher level).
    for (std::size_t lv = 0; lv < fwd_bucket_.size(); ++lv) {
      for (std::size_t qi = 0; qi < fwd_bucket_[lv].size(); ++qi) {
        const BlockId b = fwd_bucket_[lv][qi];
        ++block_updates_;
        const Block& blk = nl_.block(b);
        double arr = 0.0;
        for (NetId n : blk.inputs) {
          arr = std::max(arr, arr_[nl_.net(n).driver] + net_arc(n, b));
        }
        arr += view_.t_lut;
        if (arr != arr_[b]) {
          arr_[b] = arr;
          for (BlockId sk : nl_.net(blk.output).sinks) {
            if (nl_.block(sk).type == BlockType::kLut) enqueue_fwd(sk);
          }
        }
      }
      fwd_bucket_[lv].clear();
    }

    // Backward downstream-delay propagation, LUT-level descending (a
    // block's combinational fan-in drivers always sit strictly lower).
    for (std::size_t lv = bwd_bucket_.size(); lv-- > 0;) {
      for (std::size_t qi = 0; qi < bwd_bucket_[lv].size(); ++qi) {
        const BlockId b = bwd_bucket_[lv][qi];
        ++block_updates_;
        const Block& blk = nl_.block(b);
        double down = 0.0;
        for (BlockId s : nl_.net(blk.output).sinks) {
          down = std::max(down, net_arc(blk.output, s) + down_in(s));
        }
        if (down != down_[b] && blk.type == BlockType::kLut) {
          // Registers cut timing paths: only LUT down-values feed upward.
          for (NetId n : blk.inputs) {
            const BlockId d = nl_.net(n).driver;
            if (nl_.block(d).output != kInvalidId) enqueue_bwd(d);
          }
        }
        down_[b] = down;
      }
      bwd_bucket_[lv].clear();
    }

    // Critical path by full endpoint sweep (exactly analyze_timing's
    // capture expressions, so critical_path() matches it bitwise).
    double cp = 0.0;
    for (BlockId b = 0; b < nl_.block_count(); ++b) {
      const Block& blk = nl_.block(b);
      if (blk.type == BlockType::kLatch) {
        const NetId d = blk.inputs[0];
        cp = std::max(cp, arr_[nl_.net(d).driver] + net_arc(d, b) +
                              view_.t_setup);
      } else if (blk.type == BlockType::kOutput) {
        const NetId n = blk.inputs[0];
        cp = std::max(cp, arr_[nl_.net(n).driver] + net_arc(n, b));
      }
    }
    d_max_ = cp;

    // Per-connection criticalities: worst endpoint arrival through each
    // (net, sink_slot), shaped into [0, max_criticality]. O(connections),
    // cheap next to a routing iteration; the incremental machinery above
    // is what keeps the per-iteration *net delay* work proportional to
    // the rip-up set.
    double max_path = 0.0;
    for (std::size_t i = 0; i < pl_.nets.size(); ++i) {
      const PlacedNet& pn = pl_.nets[i];
      const double arr_drv = arr_[nl_.net(pn.net).driver];
      for (std::size_t j = 0; j < pn.sinks.size(); ++j) {
        const std::size_t slot = slot_base_[i] + j;
        double worst = 0.0;
        for (std::uint32_t k = conn_off_[slot]; k < conn_off_[slot + 1];
             ++k) {
          worst = std::max(worst, arr_drv + sink_delay_[i][j] +
                                      down_in(conn_sink_[k]));
        }
        crit_[slot] =
            criticality_from_slack(d_max_ - worst, d_max_, max_crit_,
                                   crit_exp_);
        max_path = std::max(max_path, worst);
      }
    }
    worst_slack_ = d_max_ - max_path;
  }

  double criticality(std::size_t net, std::size_t sink_slot) const override {
    if (!have_timing_) {
      return seed_crit_.empty() ? 0.0 : seed_crit_[net];
    }
    return crit_[slot_base_[net] + sink_slot];
  }
  double critical_path() const override { return d_max_; }
  double worst_slack() const override { return worst_slack_; }
  std::uint64_t net_evals() const override { return net_evals_; }
  std::uint64_t block_updates() const override { return block_updates_; }

 private:
  static std::size_t total_pins(const Netlist& nl) {
    std::size_t pins = 0;
    for (const Net& n : nl.nets()) pins += n.sinks.size();
    return pins;
  }

  static std::size_t slot_of(const PlacedNet& pn, std::size_t owner) {
    const auto it =
        std::lower_bound(pn.sinks.begin(), pn.sinks.end(), owner);
    if (it == pn.sinks.end() || *it != owner) {
      throw std::logic_error("IncrementalSta: sink owner not in placed net");
    }
    return static_cast<std::size_t>(it - pn.sinks.begin());
  }

  /// analyze_timing's net_arc, reading the incrementally maintained
  /// per-net sink delays (same expressions, same values).
  double net_arc(NetId n, BlockId sink_blk) const {
    const std::size_t placed = net_to_placed_[n];
    if (placed == kInvalidId) {
      const Net& net = nl_.net(n);
      if (net.sinks.size() == 1) {
        const Block& s = nl_.block(net.sinks[0]);
        const Block& d = nl_.block(net.driver);
        if (s.type == BlockType::kLatch && d.type == BlockType::kLut) {
          return 0.0;  // fused BLE register
        }
      }
      return view_.t_local_feedback;
    }
    const PlacedNet& pn = pl_.nets[placed];
    const std::size_t owner = pack_.block_owner[sink_blk];
    const auto it =
        std::lower_bound(pn.sinks.begin(), pn.sinks.end(), owner);
    if (it != pn.sinks.end() && *it == owner) {
      return sink_delay_[placed][static_cast<std::size_t>(
          it - pn.sinks.begin())];
    }
    return view_.t_local_feedback;  // same-cluster sink of a global net
  }

  /// Delay from arriving at sink block `s`'s input to the worst timing
  /// endpoint at or beyond it.
  double down_in(BlockId s) const {
    switch (nl_.block(s).type) {
      case BlockType::kLut:
        return view_.t_lut + down_[s];
      case BlockType::kLatch:
        return view_.t_setup;
      default:
        return 0.0;  // primary output capture
    }
  }

  void enqueue_fwd(BlockId b) {
    if (fwd_stamp_[b] == epoch_) return;
    fwd_stamp_[b] = epoch_;
    fwd_bucket_[level_[b]].push_back(b);
  }
  void enqueue_bwd(BlockId b) {
    if (bwd_stamp_[b] == epoch_) return;
    bwd_stamp_[b] = epoch_;
    bwd_bucket_[level_[b]].push_back(b);
  }

  const Netlist& nl_;
  const Packing& pack_;
  const Placement& pl_;
  const ElectricalView view_;  // by value: outlives any caller temporary
  /// Shared (possibly cache-resident) immutable delay model.
  const std::shared_ptr<const DelayModel> model_;
  const double crit_exp_;
  const double max_crit_;
  const std::size_t blocks_at_build_ = nl_.block_count();
  const std::size_t nets_at_build_ = nl_.net_count();
  const std::size_t pins_at_build_ = total_pins(nl_);

  std::vector<std::size_t> net_to_placed_;
  std::vector<std::vector<double>> sink_delay_;  ///< Per placed net/slot.
  std::vector<std::size_t> slot_base_;           ///< Net -> first slot.
  std::vector<std::uint32_t> conn_off_;  ///< Slot -> conn_sink_ range.
  std::vector<BlockId> conn_sink_;       ///< Netlist sinks per slot.
  std::vector<std::size_t> level_;       ///< LUT level (non-LUT = 0).

  std::vector<double> arr_;   ///< Block output arrival [s].
  std::vector<double> down_;  ///< Downstream delay from output pin [s].
  std::vector<double> crit_;  ///< Per-slot criticality (last update).
  std::vector<double> seed_crit_;  ///< Placement-based, pre-routing.
  double d_max_ = 0.0;
  double worst_slack_ = 0.0;
  bool have_timing_ = false;

  std::vector<std::vector<BlockId>> fwd_bucket_, bwd_bucket_;
  std::vector<std::uint32_t> fwd_stamp_, bwd_stamp_, net_stamp_;
  std::uint32_t epoch_ = 0;
  NetDelayScratch scratch_;
  std::uint64_t net_evals_ = 0;
  std::uint64_t block_updates_ = 0;
};

}  // namespace

std::unique_ptr<RouterTimingHook> make_incremental_sta(
    const Netlist& nl, const Packing& pack, const Placement& pl,
    const RrGraphView& g, const ElectricalView& view, double criticality_exp,
    double max_criticality) {
  return std::make_unique<IncrementalSta>(nl, pack, pl, g, view,
                                          criticality_exp, max_criticality,
                                          nullptr);
}

std::unique_ptr<RouterTimingHook> make_incremental_sta(
    const Netlist& nl, const Packing& pack, const Placement& pl,
    const RrGraphView& g, const ElectricalView& view, double criticality_exp,
    double max_criticality, std::shared_ptr<const DelayModel> model) {
  return std::make_unique<IncrementalSta>(nl, pack, pl, g, view,
                                          criticality_exp, max_criticality,
                                          std::move(model));
}

}  // namespace nemfpga
