#include "timing/sta.hpp"

#include <cmath>
#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "verify/check.hpp"

namespace nemfpga {

void routed_net_delays(const RrGraph& g, const RouteTree& tree,
                       const PlacedNet& net, const Placement& pl,
                       const ElectricalView& view, NetDelayScratch& scratch,
                       std::vector<double>& out) {
  if (scratch.epoch.size() != g.node_count()) {
    scratch.epoch.assign(g.node_count(), 0);
    scratch.delay.assign(g.node_count(), 0.0);
    scratch.cur = 0;
  }
  const std::uint32_t cur = ++scratch.cur;
  auto known = [&](RrNodeId id) { return scratch.epoch[id] == cur; };
  scratch.epoch[tree.source] = cur;
  scratch.delay[tree.source] = view.t_output_path;
  for (const auto& [from, to] : tree.edges) {
    if (!known(from)) {
      throw std::logic_error("routed_net_delays: edge from unknown node");
    }
    double d = scratch.delay[from];
    switch (g.node(to).type) {
      case RrType::kChanX:
      case RrType::kChanY:
        d += view.t_wire_stage;
        break;
      case RrType::kIpin:
        d += view.t_input_path;
        break;
      default:
        break;  // OPIN / SINK add no additional stage
    }
    // Keep the earliest (tree order guarantees a single write in practice).
    if (!known(to)) {
      scratch.epoch[to] = cur;
      scratch.delay[to] = d;
    }
  }
  out.clear();
  out.reserve(net.sinks.size());
  for (std::size_t s : net.sinks) {
    const BlockLoc& l = pl.locs[s];
    const RrNodeId sink = g.site(l.x, l.y).sink;
    if (!known(sink)) {
      throw std::logic_error("routed_net_delays: sink not in tree");
    }
    out.push_back(scratch.delay[sink]);
  }
}

std::vector<double> routed_net_delays(const RrGraph& g, const RouteTree& tree,
                                      const PlacedNet& net,
                                      const Placement& pl,
                                      const ElectricalView& view) {
  NetDelayScratch scratch;
  std::vector<double> out;
  routed_net_delays(g, tree, net, pl, view, scratch, out);
  return out;
}

TimingResult analyze_timing(const Netlist& nl, const Packing& pack,
                            const Placement& pl, const RrGraph& g,
                            const RoutingResult& routing,
                            const ElectricalView& view) {
  if (routing.trees.size() != pl.nets.size()) {
    throw std::invalid_argument("analyze_timing: routing/placement mismatch");
  }

  // Per placed net: delay to each sink packed-block.
  std::vector<std::size_t> net_to_placed(nl.net_count(), kInvalidId);
  std::vector<std::unordered_map<std::size_t, double>> sink_delay(
      pl.nets.size());
  double log_sum = 0.0;
  std::size_t n_delays = 0;
  NetDelayScratch scratch;  // one allocation for the whole run
  std::vector<double> delays;
  for (std::size_t i = 0; i < pl.nets.size(); ++i) {
    net_to_placed[pl.nets[i].net] = i;
    routed_net_delays(g, routing.trees[i], pl.nets[i], pl, view, scratch,
                      delays);
    for (std::size_t s = 0; s < delays.size(); ++s) {
      sink_delay[i].emplace(pl.nets[i].sinks[s], delays[s]);
      if (delays[s] > 0.0) {
        log_sum += std::log(delays[s]);
        ++n_delays;
      }
    }
  }

  // Net arc delay from a driven net into a consuming block.
  auto net_arc = [&](NetId n, BlockId sink_blk) {
    const std::size_t placed = net_to_placed[n];
    if (placed == kInvalidId) {
      // Absorbed: intra-BLE (LUT->FF) is hard-wired, intra-cluster goes
      // through the local feedback crossbar.
      const Net& net = nl.net(n);
      if (net.sinks.size() == 1) {
        const Block& s = nl.block(net.sinks[0]);
        const Block& d = nl.block(net.driver);
        if (s.type == BlockType::kLatch && d.type == BlockType::kLut) {
          return 0.0;  // fused BLE register
        }
      }
      return view.t_local_feedback;
    }
    const std::size_t owner = pack.block_owner[sink_blk];
    const auto it = sink_delay[placed].find(owner);
    if (it != sink_delay[placed].end()) return it->second;
    // Same-cluster sink of a global net: local feedback.
    return view.t_local_feedback;
  };

  // Topological arrival-time propagation over combinational LUT edges.
  TimingResult result;
  result.arrival.assign(nl.block_count(), 0.0);
  std::vector<std::size_t> pending(nl.block_count(), 0);
  std::deque<BlockId> ready;
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const Block& blk = nl.block(b);
    if (blk.type == BlockType::kInput) {
      result.arrival[b] = 0.0;
      ready.push_back(b);
    } else if (blk.type == BlockType::kLatch) {
      result.arrival[b] = view.t_clk_q;
      ready.push_back(b);
    } else if (blk.type == BlockType::kLut) {
      std::size_t comb_inputs = 0;
      for (NetId n : blk.inputs) {
        if (nl.block(nl.net(n).driver).type == BlockType::kLut) ++comb_inputs;
      }
      pending[b] = comb_inputs;
      if (comb_inputs == 0) ready.push_back(b);
    }
  }

  std::size_t processed_luts = 0;
  while (!ready.empty()) {
    const BlockId b = ready.front();
    ready.pop_front();
    const Block& blk = nl.block(b);
    if (blk.type == BlockType::kLut) {
      double arr = 0.0;
      for (NetId n : blk.inputs) {
        const BlockId drv = nl.net(n).driver;
        arr = std::max(arr, result.arrival[drv] + net_arc(n, b));
      }
      result.arrival[b] = arr + view.t_lut;
      ++processed_luts;
    }
    // Release combinational fanout. Only LUT drivers were counted in
    // `pending` (PIs and latch outputs are timing start points), so only
    // LUT completions may decrement it.
    if (blk.type == BlockType::kLut) {
      for (BlockId s : nl.net(blk.output).sinks) {
        if (nl.block(s).type == BlockType::kLut && pending[s] > 0) {
          if (--pending[s] == 0) ready.push_back(s);
        }
      }
    }
  }
  if (processed_luts != nl.lut_count()) {
    throw std::logic_error("analyze_timing: combinational cycle");
  }

  // Critical path: worst capture at latch D inputs and primary outputs.
  double cp = 0.0;
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const Block& blk = nl.block(b);
    if (blk.type == BlockType::kLatch) {
      const NetId d = blk.inputs[0];
      const BlockId drv = nl.net(d).driver;
      cp = std::max(cp, result.arrival[drv] + net_arc(d, b) + view.t_setup);
    } else if (blk.type == BlockType::kOutput) {
      const NetId n = blk.inputs[0];
      const BlockId drv = nl.net(n).driver;
      cp = std::max(cp, result.arrival[drv] + net_arc(n, b));
    }
  }
  result.critical_path = cp;
  result.geomean_net_delay =
      n_delays ? std::exp(log_sum / static_cast<double>(n_delays)) : 0.0;
  // Invariant hook (NF_CHECK_INVARIANTS): the topological pass above
  // already proved acyclicity by count; additionally every arrival time
  // must be finite and non-negative, and the critical path must dominate
  // every individual arrival's logic component.
  if (verify::checks_enabled()) {
    for (BlockId b = 0; b < nl.block_count(); ++b) {
      const double a = result.arrival[b];
      if (!std::isfinite(a) || a < 0.0) {
        throw std::logic_error("analyze_timing: non-finite/negative arrival");
      }
    }
    if (!std::isfinite(result.critical_path) || result.critical_path < 0.0) {
      throw std::logic_error("analyze_timing: bad critical path");
    }
  }
  return result;
}

}  // namespace nemfpga
