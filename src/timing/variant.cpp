#include "timing/variant.hpp"

#include <cmath>

#include "circuit/logical_effort.hpp"

namespace nemfpga {
namespace {

SwitchElectrical switch_electrical(FpgaVariant variant, const Tech22nm& tech,
                                   const RelayEquivalent& relay) {
  SwitchElectrical sw;
  if (variant == FpgaVariant::kCmosBaseline) {
    const PassTransistor& pt = tech.routing_pass_transistor;
    sw.r_on = pt.on_resistance(tech.cmos);
    sw.c_off_load = tech.cmos.drain_cap(tech.cmos.w_min * pt.width_mult);
    sw.c_on_load = pt.parasitic_cap(tech.cmos);
    sw.leak_per_switch = pt.leakage(tech.cmos);
  } else {
    sw.r_on = relay.ron;
    sw.c_off_load = relay.coff;  // zero-leakage mechanical air gap
    sw.c_on_load = relay.con;
    sw.leak_per_switch = 0.0;
  }
  return sw;
}

/// Loads a single segment-wire driver must drive, given a tile pitch.
double wire_segment_load(const ElectricalView& v, double pitch,
                         double next_stage_cin) {
  const auto& arch = v.arch;
  const double wire_cap =
      v.tech.wire.c_per_m * pitch * static_cast<double>(arch.L);
  // CB taps hanging off the wire: cb_switches spread over 2W wires per
  // tile, over L tiles.
  const double taps_per_wire =
      static_cast<double>(v.composition.cb_switches) /
      (2.0 * static_cast<double>(arch.W)) * static_cast<double>(arch.L);
  const double tap_cap = taps_per_wire * v.sw.c_off_load;
  // Fanout at the end: Fs downstream wire-driver mux inputs.
  const double sb_cap =
      static_cast<double>(arch.fs) * (v.sw.c_off_load + next_stage_cin);
  return wire_cap + tap_cap + sb_cap;
}

/// LB-internal constants: LUT delay, crossbar and FF figures from the
/// 22 nm models (HSPICE stand-ins, Fig 10's "timing extraction").
void fill_logic_delays(ElectricalView& v) {
  const CmosTech& t = v.tech.cmos;
  // K-LUT: 2^K SRAM mux tree ~ K series min pass transistors + internal
  // buffer; Elmore through the tree.
  const double r_stage = t.nmos_resistance(t.w_min) * 1.5;
  const double c_stage = 2.0 * t.drain_cap(t.w_min);
  v.t_lut = 0.69 * static_cast<double>(v.arch.K) * r_stage * c_stage * 4.0 +
            design_optimal_chain(t, 4.0 * t.min_inverter_input_cap()).delay(
                4.0 * t.min_inverter_input_cap());
  v.t_clk_q = 18e-12;
  v.t_setup = 12e-12;
}

}  // namespace

ElectricalView make_view(const ArchParams& arch, FpgaVariant variant,
                         double wire_buffer_downsize, const Tech22nm& tech,
                         const RelayEquivalent& relay) {
  ElectricalView v;
  v.variant = variant;
  v.arch = arch;
  v.tech = tech;
  v.relay = relay;
  v.wire_buffer_downsize =
      variant == FpgaVariant::kNemOptimized ? wire_buffer_downsize : 1.0;
  v.composition = tile_composition(arch);
  v.sw = switch_electrical(variant, tech, relay);
  v.lb_buffers_present = variant != FpgaVariant::kNemOptimized;

  const RoutingFabric fabric = variant == FpgaVariant::kCmosBaseline
                                   ? RoutingFabric::kCmosPassTransistor
                                   : RoutingFabric::kNemRelay;
  const CmosTech& t = tech.cmos;

  // Fixed point: pitch -> loads -> buffer sizes -> areas -> pitch.
  double pitch = 10e-6;
  for (int iter = 0; iter < 4; ++iter) {
    // Crossbar load on an LB input pin: one mux tap per LUT input mux.
    const double xbar_taps = static_cast<double>(arch.N * arch.K);
    const double local_wire = 2e-6 * tech.wire.c_per_m +
                              0.2 * pitch * tech.wire.c_per_m;
    v.c_lb_input_path = xbar_taps * v.sw.c_off_load + local_wire;

    // LB output: feedback into the crossbar plus the OPIN connections into
    // Fcout wire-driver muxes.
    v.c_lb_output_path =
        xbar_taps * v.sw.c_off_load + local_wire +
        static_cast<double>(arch.fc_out_tracks()) * v.sw.c_off_load;

    // Buffers.
    if (variant == FpgaVariant::kCmosBaseline) {
      v.lb_input_buffer = make_cmos_routing_buffer(tech, v.c_lb_input_path);
      v.lb_output_buffer = make_cmos_routing_buffer(tech, v.c_lb_output_path);
    } else if (variant == FpgaVariant::kNemNaive) {
      // Relays (full swing) but buffers retained at their natural size.
      v.lb_input_buffer = make_nem_wire_buffer(tech, v.c_lb_input_path);
      v.lb_output_buffer = make_nem_wire_buffer(tech, v.c_lb_output_path);
    } else {
      v.lb_input_buffer = RoutingBuffer{};
      v.lb_output_buffer = RoutingBuffer{};
    }

    // Wire buffer sized against the real segment load (estimated with its
    // own input cap from the previous iteration as next-stage load).
    const double next_cin = v.wire_buffer.chain.stage_mults.empty()
                                ? t.min_inverter_input_cap()
                                : v.wire_buffer.input_cap();
    v.c_wire_segment = wire_segment_load(v, pitch, next_cin);
    if (variant == FpgaVariant::kCmosBaseline) {
      v.wire_buffer = make_cmos_routing_buffer(tech, v.c_wire_segment);
    } else {
      v.wire_buffer = make_nem_wire_buffer(tech, v.c_wire_segment,
                                           v.wire_buffer_downsize);
    }

    // Area from the sized buffers.
    BufferAreas bufs;
    bufs.wire = v.wire_buffer.area_mwta();
    if (v.lb_buffers_present) {
      bufs.lb_input = v.lb_input_buffer.area_mwta();
      bufs.lb_output = v.lb_output_buffer.area_mwta();
    }
    v.area = tile_area(v.composition, fabric, bufs);
    pitch = tile_pitch(v.area);
  }
  v.tile_pitch = pitch;

  // ---- Delays ------------------------------------------------------------
  fill_logic_delays(v);

  const double r_wire =
      tech.wire.r_per_m * pitch * static_cast<double>(arch.L);
  // Driver chain into the full segment load, plus the distributed wire RC.
  v.t_wire_stage = v.wire_buffer.delay(v.c_wire_segment) +
                   0.5 * r_wire * v.c_wire_segment +
                   0.69 * v.sw.r_on * v.c_wire_segment;  // mux series R

  // CB tap -> (input buffer) -> crossbar switch -> LUT input.
  const double c_lut_in = 4.0 * t.min_inverter_input_cap();
  const double r_tap = v.sw.r_on;
  if (v.lb_buffers_present) {
    v.t_input_path = 0.69 * r_tap * v.lb_input_buffer.input_cap() +
                     v.lb_input_buffer.delay(v.c_lb_input_path) +
                     0.69 * v.sw.r_on * c_lut_in;
  } else {
    // Buffer removed: the CB tap drives the crossbar load directly through
    // the (low Ron) relay taps.
    v.t_input_path =
        0.69 * (r_tap + v.sw.r_on) * (v.c_lb_input_path + c_lut_in);
  }

  // LUT/FF output -> (output buffer) -> OPIN -> wire-driver mux input.
  const double c_mux_in = v.wire_buffer.input_cap() + v.sw.c_on_load;
  if (v.lb_buffers_present) {
    v.t_output_path = v.lb_output_buffer.delay(v.c_lb_output_path) +
                      0.69 * v.sw.r_on * c_mux_in;
  } else {
    const double r_drive = t.min_inverter_resistance() / 4.0;  // BLE driver
    v.t_output_path =
        0.69 * (r_drive + v.sw.r_on) * (v.c_lb_output_path + c_mux_in);
  }

  // Intra-cluster feedback: output path into the crossbar and back into a
  // LUT input (no channel wires involved).
  if (v.lb_buffers_present) {
    v.t_local_feedback = v.lb_output_buffer.delay(v.c_lb_output_path) +
                         0.69 * v.sw.r_on * c_lut_in;
  } else {
    const double r_drive = t.min_inverter_resistance() / 4.0;
    v.t_local_feedback =
        0.69 * (r_drive + v.sw.r_on) * (v.c_lb_output_path + c_lut_in);
  }
  return v;
}

}  // namespace nemfpga
