#include "timing/variant.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "circuit/logical_effort.hpp"

namespace nemfpga {
namespace {

/// Loads a single segment-wire driver must drive, given a tile pitch.
double wire_segment_load(const ElectricalView& v, double pitch,
                         double next_stage_cin) {
  const auto& arch = v.arch;
  const double wire_cap =
      v.tech.wire.c_per_m * pitch * static_cast<double>(arch.L);
  // CB taps hanging off the wire: cb_switches spread over 2W wires per
  // tile, over L tiles.
  const double taps_per_wire =
      static_cast<double>(v.composition.cb_switches) /
      (2.0 * static_cast<double>(arch.W)) * static_cast<double>(arch.L);
  const double tap_cap = taps_per_wire * v.sw.c_off_load;
  // Fanout at the end: Fs downstream wire-driver mux inputs.
  const double sb_cap =
      static_cast<double>(arch.fs) * (v.sw.c_off_load + next_stage_cin);
  return wire_cap + tap_cap + sb_cap;
}

/// LB-internal constants: LUT delay, crossbar and FF figures from the
/// 22 nm models (HSPICE stand-ins, Fig 10's "timing extraction").
void fill_logic_delays(ElectricalView& v) {
  const CmosTech& t = v.tech.cmos;
  // K-LUT: 2^K SRAM mux tree ~ K series min pass transistors + internal
  // buffer; Elmore through the tree.
  const double r_stage = t.nmos_resistance(t.w_min) * 1.5;
  const double c_stage = 2.0 * t.drain_cap(t.w_min);
  v.t_lut = 0.69 * static_cast<double>(v.arch.K) * r_stage * c_stage * 4.0 +
            design_optimal_chain(t, 4.0 * t.min_inverter_input_cap()).delay(
                4.0 * t.min_inverter_input_cap());
  v.t_clk_q = 18e-12;
  v.t_setup = 12e-12;
}

/// Satellite of the registry refactor: the historical make_view silently
/// clamped an unusable wire_buffer_downsize to 1.0 — a swallowed
/// parameter. Now it is a named-parameter error in the strict-CLI style.
void check_downsize(double downsize, const SwitchTechnology& backend,
                    const SwitchBufferPolicy& policy) {
  if (!(downsize >= 1.0) || downsize > 8.0) {
    std::ostringstream os;
    os << "bad value for wire_buffer_downsize: '" << downsize
       << "' (the paper's sweep range is 1..8)";
    throw std::invalid_argument(os.str());
  }
  if (downsize != 1.0 && !policy.supports_wire_downsize) {
    std::ostringstream os;
    os << "bad value for wire_buffer_downsize: '" << downsize
       << "' (switch technology '" << backend.name()
       << "' does not downsize wire buffers; only a backend with the "
          "wire-downsize policy, e.g. 'nem-opt', accepts values != 1)";
    throw std::invalid_argument(os.str());
  }
}

}  // namespace

ElectricalView make_view(const ArchParams& arch,
                         const SwitchTechnology& backend,
                         double wire_buffer_downsize, const Tech22nm& tech,
                         const RelayEquivalent& relay) {
  const SwitchBufferPolicy buffers = backend.buffer_policy();
  const SwitchAreaPolicy area_policy = backend.area_policy();
  check_downsize(wire_buffer_downsize, backend, buffers);

  ElectricalView v;
  v.backend = std::string(backend.name());
  v.arch = arch;
  v.tech = tech;
  v.relay = relay;
  v.wire_buffer_downsize = wire_buffer_downsize;
  v.composition = tile_composition(arch);
  v.sw = backend.electrical(tech, relay);
  v.config_leak_per_bit = backend.config_leak_per_bit(tech);
  v.lb_buffers_present = buffers.lb_buffers_present;

  const CmosTech& t = tech.cmos;

  // Fixed point: pitch -> loads -> buffer sizes -> areas -> pitch.
  double pitch = 10e-6;
  for (int iter = 0; iter < 4; ++iter) {
    // Crossbar load on an LB input pin: one mux tap per LUT input mux.
    const double xbar_taps = static_cast<double>(arch.N * arch.K);
    const double local_wire = 2e-6 * tech.wire.c_per_m +
                              0.2 * pitch * tech.wire.c_per_m;
    v.c_lb_input_path = xbar_taps * v.sw.c_off_load + local_wire;

    // LB output: feedback into the crossbar plus the OPIN connections into
    // Fcout wire-driver muxes.
    v.c_lb_output_path =
        xbar_taps * v.sw.c_off_load + local_wire +
        static_cast<double>(arch.fc_out_tracks()) * v.sw.c_off_load;

    // Buffers: restoring CMOS chains behind Vt-dropping pass gates,
    // plain full-swing inverters otherwise, absent when the policy
    // removes the LB buffers entirely.
    if (!buffers.lb_buffers_present) {
      v.lb_input_buffer = RoutingBuffer{};
      v.lb_output_buffer = RoutingBuffer{};
    } else if (buffers.full_swing) {
      v.lb_input_buffer = make_nem_wire_buffer(tech, v.c_lb_input_path);
      v.lb_output_buffer = make_nem_wire_buffer(tech, v.c_lb_output_path);
    } else {
      v.lb_input_buffer = make_cmos_routing_buffer(tech, v.c_lb_input_path);
      v.lb_output_buffer = make_cmos_routing_buffer(tech, v.c_lb_output_path);
    }

    // Wire buffer sized against the real segment load (estimated with its
    // own input cap from the previous iteration as next-stage load).
    const double next_cin = v.wire_buffer.chain.stage_mults.empty()
                                ? t.min_inverter_input_cap()
                                : v.wire_buffer.input_cap();
    v.c_wire_segment = wire_segment_load(v, pitch, next_cin);
    if (buffers.full_swing) {
      v.wire_buffer = make_nem_wire_buffer(tech, v.c_wire_segment,
                                           v.wire_buffer_downsize);
    } else {
      v.wire_buffer = make_cmos_routing_buffer(tech, v.c_wire_segment);
    }

    // Area from the sized buffers.
    BufferAreas bufs;
    bufs.wire = v.wire_buffer.area_mwta();
    if (v.lb_buffers_present) {
      bufs.lb_input = v.lb_input_buffer.area_mwta();
      bufs.lb_output = v.lb_output_buffer.area_mwta();
    }
    v.area = tile_area(v.composition, area_policy, bufs);
    pitch = tile_pitch(v.area);
  }
  v.tile_pitch = pitch;

  // ---- Delays ------------------------------------------------------------
  fill_logic_delays(v);

  const double r_wire =
      tech.wire.r_per_m * pitch * static_cast<double>(arch.L);
  // Driver chain into the full segment load, plus the distributed wire RC.
  v.t_wire_stage = v.wire_buffer.delay(v.c_wire_segment) +
                   0.5 * r_wire * v.c_wire_segment +
                   0.69 * v.sw.r_on * v.c_wire_segment;  // mux series R

  // CB tap -> (input buffer) -> crossbar switch -> LUT input.
  const double c_lut_in = 4.0 * t.min_inverter_input_cap();
  const double r_tap = v.sw.r_on;
  if (v.lb_buffers_present) {
    v.t_input_path = 0.69 * r_tap * v.lb_input_buffer.input_cap() +
                     v.lb_input_buffer.delay(v.c_lb_input_path) +
                     0.69 * v.sw.r_on * c_lut_in;
  } else {
    // Buffer removed: the CB tap drives the crossbar load directly through
    // the (low Ron) relay taps.
    v.t_input_path =
        0.69 * (r_tap + v.sw.r_on) * (v.c_lb_input_path + c_lut_in);
  }

  // LUT/FF output -> (output buffer) -> OPIN -> wire-driver mux input.
  const double c_mux_in = v.wire_buffer.input_cap() + v.sw.c_on_load;
  if (v.lb_buffers_present) {
    v.t_output_path = v.lb_output_buffer.delay(v.c_lb_output_path) +
                      0.69 * v.sw.r_on * c_mux_in;
  } else {
    const double r_drive = t.min_inverter_resistance() / 4.0;  // BLE driver
    v.t_output_path =
        0.69 * (r_drive + v.sw.r_on) * (v.c_lb_output_path + c_mux_in);
  }

  // Intra-cluster feedback: output path into the crossbar and back into a
  // LUT input (no channel wires involved).
  if (v.lb_buffers_present) {
    v.t_local_feedback = v.lb_output_buffer.delay(v.c_lb_output_path) +
                         0.69 * v.sw.r_on * c_lut_in;
  } else {
    const double r_drive = t.min_inverter_resistance() / 4.0;
    v.t_local_feedback =
        0.69 * (r_drive + v.sw.r_on) * (v.c_lb_output_path + c_lut_in);
  }
  return v;
}

ElectricalView make_view(const ArchParams& arch, std::string_view backend,
                         double wire_buffer_downsize, const Tech22nm& tech,
                         const RelayEquivalent& relay) {
  return make_view(arch, switch_technology(backend), wire_buffer_downsize,
                   tech, relay);
}

ElectricalView make_view(const ArchParams& arch, FpgaVariant variant,
                         double wire_buffer_downsize, const Tech22nm& tech,
                         const RelayEquivalent& relay) {
  return make_view(arch, switch_technology(variant_backend_name(variant)),
                   wire_buffer_downsize, tech, relay);
}

}  // namespace nemfpga
