// VPR-style simulated-annealing placement: wirelength-driven (bounding-box
// with the standard fanout correction), adaptive temperature schedule and
// range-limited swap moves. Logic clusters occupy the nx-by-ny grid; IO
// blocks occupy perimeter pad slots.
//
// The annealer is built from three layers (mirroring the router):
//  - NetCostModel: incremental bounding-box cost with per-edge pin counts,
//    so a proposal is evaluated in O(1) per touched net (full rescan only
//    when a solo edge pin moves inward) and *without* mutating committed
//    state — rejected moves cost nothing to undo.
//  - Move generators: uniform range-limited swaps (the default, which
//    reproduces the seed annealer bit-for-bit) plus opt-in
//    weighted-centroid and median-region directed generators under an
//    adaptive probability schedule, with criticality-biased block picks
//    in the timing-driven phase.
//  - Deterministic parallel annealing (PlaceOptions::batch_moves >= 2):
//    speculative move batches are generated and evaluated on the
//    NF_THREADS pool against frozen placement state from per-slot forked
//    RNG streams, then committed serially in slot order with
//    epoch-stamped conflict detection and serial replay — bit-identical
//    at any thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/params.hpp"
#include "netlist/netlist.hpp"
#include "pack/pack.hpp"
#include "util/rng.hpp"

namespace nemfpga {

/// Location of a packed block: grid cell plus pad sub-slot (IO only).
struct BlockLoc {
  std::size_t x = 0;
  std::size_t y = 0;
  std::size_t sub = 0;
};

/// A routable net at the placement/routing level: driver block and sink
/// blocks (packed-block indices), with the originating netlist net.
struct PlacedNet {
  NetId net = kInvalidId;
  std::size_t driver = kInvalidId;
  std::vector<std::size_t> sinks;
};

/// Work counters for one place() call (always on; the bench harness and
/// the TSan/determinism tests read them).
struct PlaceCounters {
  std::uint64_t proposed = 0;   ///< Moves drawn, incl. degenerate no-ops.
  std::uint64_t accepted = 0;   ///< Moves committed.
  std::uint64_t rescans = 0;    ///< Incremental-edge-collapse full rescans.
  std::uint64_t directed = 0;   ///< Proposals from directed generators.
  std::uint64_t batches = 0;    ///< Speculative batches evaluated.
  std::uint64_t conflicts = 0;  ///< Stale proposals detected at commit.
  std::uint64_t repairs = 0;    ///< Net-level stale: only touched-and-
                                ///< changed nets re-evaluated serially.
  std::uint64_t replays = 0;    ///< Block/slot-level stale: full serial
                                ///< re-resolve and re-evaluation.
};

struct Placement {
  std::size_t nx = 0, ny = 0;
  std::vector<BlockLoc> locs;   ///< Per packed block.
  std::vector<PlacedNet> nets;  ///< Inter-block nets to route.
  /// Unweighted bounding-box cost after annealing (always comparable to
  /// placement_cost(), including after a timing-driven run).
  double final_cost = 0.0;
  /// Criticality-weighted cost the timing-driven anneal actually
  /// minimized; equals final_cost when timing_driven is off.
  double final_weighted_cost = 0.0;
  PlaceCounters counters;
};

struct PlaceOptions {
  double inner_num = 2.0;   ///< Moves per temperature ~ inner_num * n^(4/3).
  std::uint64_t seed = 1;
  /// Timing-driven mode (VPR-style): after the wirelength anneal, net
  /// criticalities are estimated from a placement-based delay model and a
  /// second, criticality-weighted anneal runs at medium temperature.
  bool timing_driven = false;
  /// Weight emphasis for critical nets: w = 1 + timing_weight * crit^2.
  double timing_weight = 4.0;
  /// Speculative move-batch size for the deterministic parallel annealer.
  /// 0 (the default) and 1 keep the serial discipline that reproduces the
  /// seed annealer bit-for-bit; >= 2 evaluates batches of this many moves
  /// on the NF_THREADS pool. Batch results are bit-identical at any
  /// thread count (the batch size, not the thread count, shapes the
  /// anneal trajectory).
  std::size_t batch_moves = 0;
  /// Enable the weighted-centroid / median-region move generators under
  /// an adaptive probability schedule (plus criticality-biased block
  /// picks in the timing-driven phase).
  bool directed_moves = false;
  /// Evaluate proposals with the seed annealer's full-rescan kernel
  /// (identical placements; O(pins) per touched net per proposal and a
  /// second scan on reject). Perf baseline for bench/place_perf --naive.
  bool naive_cost = false;
};

/// Incremental bounding-box net-cost engine. Owns per-net boxes with
/// min/max edge-occupancy counts so moving a block updates each touched
/// net in O(1) unless the last pin on a bounding edge moves inward (then
/// one full rescan re-derives the edge). propose() evaluates a move
/// against the committed state without mutating it; commit() applies a
/// pending evaluation. Net costs are derived from the final integer box
/// coordinates only, so the incremental and full-scan derivations are
/// bit-identical — the differential suite in tests/prop/prop_place_diff
/// pins this against the naive oracle in src/verify/reference_place.cpp.
///
/// The PlacedNet list must outlive the model, have unique pins per net
/// (driver not repeated in sinks) and sorted sink lists — exactly what
/// extract_placed_nets produces.
class NetCostModel {
 public:
  /// Packed to 24 bytes (16 bytes of geometry + the cost) so the hot
  /// boxes_ array stays cache-resident; grids and fanouts far exceed
  /// 16-bit range long before placement is the bottleneck.
  struct Box {
    std::uint16_t x_lo = 0, x_hi = 0, y_lo = 0, y_hi = 0;
    /// Pins currently sitting on each bounding edge; a pin of a
    /// degenerate (lo == hi) axis counts on both edges.
    std::uint16_t on_x_lo = 0, on_x_hi = 0, on_y_lo = 0, on_y_hi = 0;
    double cost = 0.0;
  };
  struct PendingNet {
    std::size_t net = 0;
    Box box;
  };
  /// One evaluated proposal: the nets whose box record actually changes
  /// (touched nets whose geometry and edge counts are unaffected — e.g.
  /// a pin moving strictly inside the box — are exact-zero contributions
  /// and are omitted), the summed cost delta, and how many evaluations
  /// fell back to a full rescan. Reusable scratch — clear() keeps
  /// capacity.
  struct Pending {
    std::vector<PendingNet> nets;
    double delta = 0.0;
    std::uint64_t rescans = 0;
    void clear() {
      nets.clear();
      delta = 0.0;
      rescans = 0;
    }
  };

  static constexpr std::size_t kNoBlock = static_cast<std::size_t>(-1);

  NetCostModel(const std::vector<PlacedNet>* nets, std::size_t n_blocks);

  /// Replace the per-net weights (timing-driven criticality emphasis);
  /// must be followed by rebuild() to re-derive box costs.
  void set_weights(std::vector<double> w);

  /// Recompute every box and the total cost from scratch.
  void rebuild(const std::vector<BlockLoc>& locs);

  /// Tracked total cost: rebuild()'s sum plus one += delta per commit —
  /// the same accumulation the seed annealer performed.
  double total_cost() const { return cost_; }

  /// Unweighted bounding-box cost from the committed boxes, summed in
  /// net order (placement_cost()'s definition).
  double unweighted_cost() const;

  const Box& box(std::size_t net) const { return boxes_[net]; }
  double weight(std::size_t net) const { return weight_[net]; }
  std::size_t net_count() const { return nets_->size(); }

  /// Nets touching a block, ascending by net index.
  const std::vector<std::size_t>& nets_of(std::size_t block) const {
    return block_nets_[block];
  }

  /// Visit every net touching block a and/or block b exactly once, in
  /// the canonical evaluation order (a's nets ascending, then b's nets
  /// not shared with a, ascending) as f(net, moves_a, moves_b). A merge
  /// over the two sorted lists — no per-net membership search. propose()
  /// and the batch annealer's stale-repair walk both use this order, so
  /// their floating-point accumulations are bit-identical.
  template <typename F>
  void for_each_touched(std::size_t a, std::size_t b, F&& f) const {
    const std::vector<std::size_t>& la = block_nets_[a];
    if (b == kNoBlock) {
      for (std::size_t n : la) f(n, true, false);
      return;
    }
    const std::vector<std::size_t>& lb = block_nets_[b];
    std::size_t j = 0;
    for (std::size_t n : la) {
      while (j < lb.size() && lb[j] < n) ++j;
      f(n, true, j < lb.size() && lb[j] == n);
    }
    std::size_t i = 0;
    for (std::size_t n : lb) {
      while (i < la.size() && la[i] < n) ++i;
      if (i < la.size() && la[i] == n) continue;  // shared: visited above
      f(n, false, true);
    }
  }

  /// Evaluate moving block a to new_a and (if b != kNoBlock) block b to
  /// new_b against the committed state, filling `out` and returning the
  /// cost delta. Does not mutate the model: safe to call concurrently
  /// from parallel batch evaluation. `locs` are the committed locations.
  double propose(const std::vector<BlockLoc>& locs, std::size_t a,
                 const BlockLoc& new_a, std::size_t b, const BlockLoc& new_b,
                 Pending& out) const;

  /// The seed annealer's kernel: full O(pins) rescan of every touched
  /// net. Bit-identical delta to propose(); kept as the measured perf
  /// baseline (PlaceOptions::naive_cost) and a second oracle angle.
  double propose_naive(const std::vector<BlockLoc>& locs, std::size_t a,
                       const BlockLoc& new_a, std::size_t b,
                       const BlockLoc& new_b, Pending& out) const;

  /// Apply an evaluated proposal: store the new boxes, cost += delta.
  void commit(const Pending& p);

  /// The serial fast path, mirroring the seed annealer's do_swap: move
  /// block a to `dest` (and b, if given, to a's old site) in `locs`,
  /// rescan every touched net in place, and return the cost delta. The
  /// displaced box records are appended to `undo` so a rejected move
  /// can be reversed with undo_swap() — a bitwise restore, where the
  /// seed paid a full second rescan of every touched net. The tracked
  /// total is NOT updated — the caller books the delta with
  /// book_delta() on accept. Shared nets are rescanned once per block;
  /// the second visit sees the already-stored box and contributes an
  /// exact +0.0, which keeps the delta bit-identical to propose()'s
  /// shared-net-once accumulation.
  double apply_swap(std::vector<BlockLoc>& locs, std::size_t a,
                    const BlockLoc& dest, std::size_t b, Pending& undo);

  /// Reverse a rejected apply_swap: put a back at `src` (and b back at
  /// `dest`, a's proposed target, which was b's home), and restore the
  /// displaced boxes in reverse log order — a net touched by both
  /// blocks appears twice, and the reverse walk ends on its original
  /// record. Leaves model and locations bit-identical to before the
  /// apply_swap; the tracked total was never touched.
  void undo_swap(std::vector<BlockLoc>& locs, std::size_t a,
                 const BlockLoc& src, std::size_t b, const BlockLoc& dest,
                 const Pending& undo);

  /// Fold an accepted apply_swap delta into the tracked total — the
  /// same one += per accepted move the seed annealer performed.
  void book_delta(double d) { cost_ += d; }

  /// Re-derive every box's edge-occupancy counts from `locs`. The
  /// serial apply_swap path skips count maintenance (nothing serial
  /// reads them); the batch annealer calls this once before its first
  /// batch so move_dim sees valid counts. Geometry and costs are not
  /// touched, so the cost trajectory is unaffected.
  void refresh_counts(const std::vector<BlockLoc>& locs);

  /// Fully rescan one net against `locs` with the move applied and
  /// derive its cost — the batch annealer's net-level stale repair uses
  /// this for exactly the nets invalidated by earlier commits.
  Box rescan_net(std::size_t net, const std::vector<BlockLoc>& locs,
                 std::size_t a, const BlockLoc& new_a, std::size_t b,
                 const BlockLoc& new_b) const;

 private:
  Box scan_box(const PlacedNet& n, const std::vector<BlockLoc>& locs,
               std::size_t a, const BlockLoc& new_a, std::size_t b,
               const BlockLoc& new_b) const;
  void finish_cost(Box& box, std::size_t net) const;

  const std::vector<PlacedNet>* nets_;
  std::vector<double> weight_;
  /// weight_[n] * q_factor(pins(n)) precomputed: finish_cost() is then
  /// one multiply with no PlacedNet access. (w * q) * span associates
  /// exactly as the seed's w * q * span, so costs stay bit-identical.
  std::vector<double> wq_;
  std::vector<std::vector<std::size_t>> block_nets_;
  std::vector<Box> boxes_;
  double cost_ = 0.0;
};

/// The placed view of one netlist net: driver + deduped, sorted sink
/// packed-blocks; nullopt when the net is absorbed or fully local and so
/// never reaches the router. extract_placed_nets is a scan of this over
/// ascending NetId, which is the equivalence the ECO flow relies on to
/// splice individual entries incrementally and stay bitwise-identical to
/// a from-scratch extraction.
std::optional<PlacedNet> make_placed_net(const Netlist& nl, const Packing& p,
                                         NetId n);

/// Extract the inter-block nets (driver + sinks over packed blocks) that
/// placement optimizes and routing must realize.
std::vector<PlacedNet> extract_placed_nets(const Netlist& nl, const Packing& p);

/// Placement-based net criticality estimate (no routing required): the
/// longest combinational path where a net's delay is its bounding-box
/// semiperimeter, shaped into 1 - slack / d_max per placed net. Shared by
/// the timing-driven placement anneal (criticality-weighted net weights)
/// and the router's incremental STA, which seeds its iteration-1
/// criticalities from it before any routed trees exist
/// (src/timing/sta.cpp). Result is parallel to `nets`, each entry in
/// [0, 1]. LUTs trapped in combinational cycles never drain from the
/// topological pass; they are detected afterwards, warned about once on
/// stderr, and every net touching one falls back to zero-slack (fully
/// critical) shaping instead of silently reporting arrival 0.
std::vector<double> placement_net_criticality(
    const Netlist& nl, const std::vector<PlacedNet>& nets,
    const std::vector<BlockLoc>& locs);

/// Anneal a placement on an nx-by-ny logic grid (IO pads on the border).
/// Grid must fit: nx*ny >= #clusters and perimeter capacity >= #IO blocks.
Placement place(const Netlist& nl, const Packing& p, const ArchParams& arch,
                std::size_t nx, std::size_t ny, const PlaceOptions& opt = {});

/// Total bounding-box wirelength cost of a placement (for tests/reports).
double placement_cost(const Placement& pl);

/// Validation: every block placed on a legal, non-overlapping site.
void check_placement(const Packing& p, const ArchParams& arch,
                     const Placement& pl);

}  // namespace nemfpga
