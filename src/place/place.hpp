// VPR-style simulated-annealing placement: wirelength-driven (bounding-box
// with the standard fanout correction), adaptive temperature schedule and
// range-limited swap moves. Logic clusters occupy the nx-by-ny grid; IO
// blocks occupy perimeter pad slots.
#pragma once

#include <vector>

#include "arch/params.hpp"
#include "netlist/netlist.hpp"
#include "pack/pack.hpp"
#include "util/rng.hpp"

namespace nemfpga {

/// Location of a packed block: grid cell plus pad sub-slot (IO only).
struct BlockLoc {
  std::size_t x = 0;
  std::size_t y = 0;
  std::size_t sub = 0;
};

/// A routable net at the placement/routing level: driver block and sink
/// blocks (packed-block indices), with the originating netlist net.
struct PlacedNet {
  NetId net = kInvalidId;
  std::size_t driver = kInvalidId;
  std::vector<std::size_t> sinks;
};

struct Placement {
  std::size_t nx = 0, ny = 0;
  std::vector<BlockLoc> locs;      ///< Per packed block.
  std::vector<PlacedNet> nets;     ///< Inter-block nets to route.
  double final_cost = 0.0;         ///< Bounding-box cost after annealing.
};

struct PlaceOptions {
  double inner_num = 2.0;   ///< Moves per temperature ~ inner_num * n^(4/3).
  std::uint64_t seed = 1;
  /// Timing-driven mode (VPR-style): after the wirelength anneal, net
  /// criticalities are estimated from a placement-based delay model and a
  /// second, criticality-weighted anneal runs at medium temperature.
  bool timing_driven = false;
  /// Weight emphasis for critical nets: w = 1 + timing_weight * crit^2.
  double timing_weight = 4.0;
};

/// Extract the inter-block nets (driver + sinks over packed blocks) that
/// placement optimizes and routing must realize.
std::vector<PlacedNet> extract_placed_nets(const Netlist& nl, const Packing& p);

/// Placement-based net criticality estimate (no routing required): the
/// longest combinational path where a net's delay is its bounding-box
/// semiperimeter, shaped into 1 - slack / d_max per placed net. Shared by
/// the timing-driven placement anneal (criticality-weighted net weights)
/// and the router's incremental STA, which seeds its iteration-1
/// criticalities from it before any routed trees exist
/// (src/timing/sta.cpp). Result is parallel to `nets`, each entry in
/// [0, 1].
std::vector<double> placement_net_criticality(
    const Netlist& nl, const std::vector<PlacedNet>& nets,
    const std::vector<BlockLoc>& locs);

/// Anneal a placement on an nx-by-ny logic grid (IO pads on the border).
/// Grid must fit: nx*ny >= #clusters and perimeter capacity >= #IO blocks.
Placement place(const Netlist& nl, const Packing& p, const ArchParams& arch,
                std::size_t nx, std::size_t ny, const PlaceOptions& opt = {});

/// Total bounding-box wirelength cost of a placement (for tests/reports).
double placement_cost(const Placement& pl);

/// Validation: every block placed on a legal, non-overlapping site.
void check_placement(const Packing& p, const ArchParams& arch,
                     const Placement& pl);

}  // namespace nemfpga
