#include "place/place_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nemfpga {
namespace {

/// Strict non-negative integer parse. Stream extraction into an unsigned
/// type silently wraps negative inputs ("-1" became 18446744073709551615
/// and passed the nx/ny sanity check), and std::stoul throws
/// std::invalid_argument / std::out_of_range instead of the parser's
/// documented std::runtime_error.
std::size_t parse_size(const std::string& tok, const char* what) {
  if (tok.empty() || tok.size() > 19) {
    throw std::runtime_error(std::string("placement: bad ") + what + ": " +
                             tok);
  }
  std::size_t v = 0;
  for (char ch : tok) {
    if (ch < '0' || ch > '9') {
      throw std::runtime_error(std::string("placement: bad ") + what + ": " +
                               tok);
    }
    v = v * 10 + static_cast<std::size_t>(ch - '0');
  }
  return v;
}

}  // namespace

void write_placement(const Placement& pl, std::ostream& out) {
  out << "Array size: " << pl.nx << " x " << pl.ny << " logic blocks\n";
  out << "#block\tx\ty\tsubblk\n";
  for (std::size_t b = 0; b < pl.locs.size(); ++b) {
    const BlockLoc& l = pl.locs[b];
    out << 'b' << b << '\t' << l.x << '\t' << l.y << '\t' << l.sub << '\n';
  }
}

std::string write_placement_string(const Placement& pl) {
  std::ostringstream os;
  write_placement(pl, os);
  return os.str();
}

void write_placement_file(const Placement& pl, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot write placement file: " + path);
  write_placement(pl, f);
}

Placement read_placement(std::istream& in, std::size_t expected_blocks) {
  Placement pl;
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("placement: empty file");
  }
  {
    std::istringstream is(line);
    std::string a, s, nx_tok, x, ny_tok;
    // "Array size: <nx> x <ny> logic blocks"
    is >> a >> s >> nx_tok >> x >> ny_tok;
    if (a != "Array" || s != "size:" || x != "x") {
      throw std::runtime_error("placement: bad header: " + line);
    }
    pl.nx = parse_size(nx_tok, "array width");
    pl.ny = parse_size(ny_tok, "array height");
    if (pl.nx == 0 || pl.ny == 0) {
      throw std::runtime_error("placement: bad header: " + line);
    }
  }
  pl.locs.assign(expected_blocks, BlockLoc{});
  std::vector<bool> seen(expected_blocks, false);
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string name, xs, ys, subs;
    if (!(is >> name >> xs >> ys >> subs)) {
      throw std::runtime_error("placement: bad row: " + line);
    }
    BlockLoc l;
    l.x = parse_size(xs, "x coordinate");
    l.y = parse_size(ys, "y coordinate");
    l.sub = parse_size(subs, "sub-block");
    if (name.size() < 2 || name[0] != 'b') {
      throw std::runtime_error("placement: bad block name: " + name);
    }
    const std::size_t idx = parse_size(name.substr(1), "block index");
    if (idx >= expected_blocks) {
      throw std::runtime_error("placement: block index out of range: " + name);
    }
    if (seen[idx]) {
      throw std::runtime_error("placement: duplicate block: " + name);
    }
    seen[idx] = true;
    pl.locs[idx] = l;
  }
  for (std::size_t b = 0; b < expected_blocks; ++b) {
    if (!seen[b]) {
      throw std::runtime_error("placement: missing block b" +
                               std::to_string(b));
    }
  }
  return pl;
}

Placement read_placement_string(const std::string& text,
                                std::size_t expected_blocks) {
  std::istringstream is(text);
  return read_placement(is, expected_blocks);
}

Placement read_placement_file(const std::string& path,
                              std::size_t expected_blocks) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open placement file: " + path);
  return read_placement(f, expected_blocks);
}

}  // namespace nemfpga
