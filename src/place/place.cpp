#include "place/place.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <unordered_set>

#include "timing/criticality.hpp"
#include "util/thread_pool.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define NF_ALWAYS_INLINE __attribute__((always_inline))
#else
#define NF_ALWAYS_INLINE
#endif

namespace nemfpga {
namespace {

/// VPR's bounding-box fanout correction q(terminals) [Betz 99]: accounts
/// for the underestimate of HPWL on multi-terminal nets.
double q_factor(std::size_t terminals) {
  static constexpr double kTable[] = {1.0,    1.0,    1.0,    1.0,    1.0828,
                                      1.1536, 1.2206, 1.2823, 1.3385, 1.3991,
                                      1.4493, 1.4974, 1.5455, 1.5937, 1.6418,
                                      1.6899, 1.7304, 1.7709, 1.8114, 1.8519,
                                      1.8924, 1.9288, 1.9652, 2.0015, 2.0379,
                                      2.0743, 2.1061, 2.1379, 2.1698, 2.2016,
                                      2.2334};
  if (terminals < std::size(kTable)) return kTable[terminals];
  return 2.2334 + 0.0616 * (static_cast<double>(terminals) - 30.0) / 5.0;
}

/// Fold coordinate v into a box axis being scanned from scratch.
inline void scan_dim(std::uint16_t v, std::uint16_t& lo, std::uint16_t& hi,
                     std::uint16_t& on_lo, std::uint16_t& on_hi) {
  if (v < lo) {
    lo = v;
    on_lo = 1;
  } else if (v == lo) {
    ++on_lo;
  }
  if (v > hi) {
    hi = v;
    on_hi = 1;
  } else if (v == hi) {
    ++on_hi;
  }
}

/// Move one pin of a box from `o` to `c` along one axis, maintaining the
/// edge-occupancy counts. Returns false when the pin was the last one on
/// an edge and moved inward — the new edge is unknown and the caller must
/// rescan the net. New position is folded in before the old one is
/// removed so a pin passing itself never empties a live edge.
inline bool move_dim(std::uint16_t o, std::uint16_t c, std::uint16_t& lo,
                     std::uint16_t& hi, std::uint16_t& on_lo,
                     std::uint16_t& on_hi) {
  if (o == c) return true;
  scan_dim(c, lo, hi, on_lo, on_hi);
  if (o == lo && --on_lo == 0) return false;
  if (o == hi && --on_hi == 0) return false;
  return true;
}

/// True when `blk` is a pin of net `n` (driver or one of the sorted
/// sinks).
inline bool net_has(const PlacedNet& n, std::size_t blk) {
  return blk == n.driver ||
         std::binary_search(n.sinks.begin(), n.sinks.end(), blk);
}

/// Flat-buffer capacity for the branchless box scan; bigger nets take
/// the sequential fold (identical result, just not vectorizable).
constexpr std::size_t kScanBuf = 128;

/// Identical box geometry and edge counts (the 16 bytes before cost).
/// The eight uint16 fields are contiguous with no padding, so this is
/// two 8-byte word compares.
inline bool same_geometry(const NetCostModel::Box& p,
                          const NetCostModel::Box& q) {
  static_assert(offsetof(NetCostModel::Box, cost) == 16);
  return std::memcmp(&p, &q, 16) == 0;
}

/// Location strictly inside the box on both axes: moving this pin there
/// (or away from there) cannot change the box or its edge counts.
inline bool strictly_inside(const BlockLoc& l, const NetCostModel::Box& b) {
  const std::uint16_t x = static_cast<std::uint16_t>(l.x);
  const std::uint16_t y = static_cast<std::uint16_t>(l.y);
  return b.x_lo < x && x < b.x_hi && b.y_lo < y && y < b.y_hi;
}

/// Full box scan of one net with up to two pin substitutions applied
/// (`a` at `new_a`, `b` at `new_b`). Free function in this TU so it
/// inlines into the propose() hot loop.
inline NetCostModel::Box full_scan(const PlacedNet& n,
                                   const std::vector<BlockLoc>& locs,
                                   std::size_t a, const BlockLoc& new_a,
                                   std::size_t b, const BlockLoc& new_b) {
  auto loc = [&](std::size_t blk) -> const BlockLoc& {
    if (blk == a) return new_a;
    if (blk == b) return new_b;
    return locs[blk];
  };
  NetCostModel::Box box;
  // The sequential scan_dim fold leaves on_lo == |{pins == final lo}|
  // (each new minimum resets the count, equal pins increment it), so a
  // branchless two-pass derivation — min/max sweep, then equality count
  // — produces the identical box without the fold's data-dependent
  // branches (measured faster even on the typical 2-4 pin net here).
  std::uint16_t xs[kScanBuf], ys[kScanBuf];
  const std::size_t pins = n.sinks.size() + 1;
  if (pins <= kScanBuf) {
    const BlockLoc& d = loc(n.driver);
    xs[0] = static_cast<std::uint16_t>(d.x);
    ys[0] = static_cast<std::uint16_t>(d.y);
    for (std::size_t i = 0; i < n.sinks.size(); ++i) {
      const BlockLoc& l = loc(n.sinks[i]);
      xs[i + 1] = static_cast<std::uint16_t>(l.x);
      ys[i + 1] = static_cast<std::uint16_t>(l.y);
    }
    std::uint16_t xlo = xs[0], xhi = xs[0], ylo = ys[0], yhi = ys[0];
    for (std::size_t i = 1; i < pins; ++i) {
      xlo = std::min(xlo, xs[i]);
      xhi = std::max(xhi, xs[i]);
      ylo = std::min(ylo, ys[i]);
      yhi = std::max(yhi, ys[i]);
    }
    std::uint16_t cxl = 0, cxh = 0, cyl = 0, cyh = 0;
    for (std::size_t i = 0; i < pins; ++i) {
      cxl = static_cast<std::uint16_t>(cxl + (xs[i] == xlo));
      cxh = static_cast<std::uint16_t>(cxh + (xs[i] == xhi));
      cyl = static_cast<std::uint16_t>(cyl + (ys[i] == ylo));
      cyh = static_cast<std::uint16_t>(cyh + (ys[i] == yhi));
    }
    box.x_lo = xlo;
    box.x_hi = xhi;
    box.y_lo = ylo;
    box.y_hi = yhi;
    box.on_x_lo = cxl;
    box.on_x_hi = cxh;
    box.on_y_lo = cyl;
    box.on_y_hi = cyh;
    return box;
  }
  const BlockLoc& d = loc(n.driver);
  box.x_lo = box.x_hi = static_cast<std::uint16_t>(d.x);
  box.y_lo = box.y_hi = static_cast<std::uint16_t>(d.y);
  box.on_x_lo = box.on_x_hi = box.on_y_lo = box.on_y_hi = 1;
  for (std::size_t s : n.sinks) {
    const BlockLoc& l = loc(s);
    scan_dim(static_cast<std::uint16_t>(l.x), box.x_lo, box.x_hi, box.on_x_lo,
             box.on_x_hi);
    scan_dim(static_cast<std::uint16_t>(l.y), box.y_lo, box.y_hi, box.on_y_lo,
             box.on_y_hi);
  }
  return box;
}

/// Geometry-only scan with no pin substitution — the in-place
/// apply_swap path scans already-mutated locations, so the two per-pin
/// substitution compares drop out of the gather, and the serial
/// annealer never consults the edge-occupancy counts (they exist for
/// move_dim, which only the batch propose path runs), so the equality
/// count pass drops out too. Counts are left zero; the batch annealer
/// re-derives them with refresh_counts() before it ever reads them.
inline NetCostModel::Box direct_scan(const PlacedNet& n,
                                     const std::vector<BlockLoc>& locs) {
  NetCostModel::Box box;
  box.on_x_lo = box.on_x_hi = box.on_y_lo = box.on_y_hi = 0;
  std::uint16_t xs[kScanBuf], ys[kScanBuf];
  const std::size_t pins = n.sinks.size() + 1;
  if (pins <= kScanBuf) {
    const BlockLoc& d = locs[n.driver];
    xs[0] = static_cast<std::uint16_t>(d.x);
    ys[0] = static_cast<std::uint16_t>(d.y);
    for (std::size_t i = 0; i < n.sinks.size(); ++i) {
      const BlockLoc& l = locs[n.sinks[i]];
      xs[i + 1] = static_cast<std::uint16_t>(l.x);
      ys[i + 1] = static_cast<std::uint16_t>(l.y);
    }
    std::uint16_t xlo = xs[0], xhi = xs[0], ylo = ys[0], yhi = ys[0];
    for (std::size_t i = 1; i < pins; ++i) {
      xlo = std::min(xlo, xs[i]);
      xhi = std::max(xhi, xs[i]);
      ylo = std::min(ylo, ys[i]);
      yhi = std::max(yhi, ys[i]);
    }
    box.x_lo = xlo;
    box.x_hi = xhi;
    box.y_lo = ylo;
    box.y_hi = yhi;
    return box;
  }
  const BlockLoc& d = locs[n.driver];
  box.x_lo = box.x_hi = static_cast<std::uint16_t>(d.x);
  box.y_lo = box.y_hi = static_cast<std::uint16_t>(d.y);
  std::uint16_t c0 = 1, c1 = 1, c2 = 1, c3 = 1;
  for (std::size_t s : n.sinks) {
    const BlockLoc& l = locs[s];
    scan_dim(static_cast<std::uint16_t>(l.x), box.x_lo, box.x_hi, c0, c1);
    scan_dim(static_cast<std::uint16_t>(l.y), box.y_lo, box.y_hi, c2, c3);
  }
  return box;
}

}  // namespace

NetCostModel::NetCostModel(const std::vector<PlacedNet>* nets,
                           std::size_t n_blocks)
    : nets_(nets) {
  weight_.assign(nets_->size(), 1.0);
  wq_.resize(nets_->size());
  for (std::size_t n = 0; n < nets_->size(); ++n) {
    wq_[n] = weight_[n] * q_factor((*nets_)[n].sinks.size() + 1);
  }
  block_nets_.assign(n_blocks, {});
  for (std::size_t n = 0; n < nets_->size(); ++n) {
    const PlacedNet& pn = (*nets_)[n];
    block_nets_[pn.driver].push_back(n);
    for (std::size_t s : pn.sinks) block_nets_[s].push_back(n);
  }
}

void NetCostModel::set_weights(std::vector<double> w) {
  if (w.size() != nets_->size()) {
    throw std::logic_error("NetCostModel: weight count mismatch");
  }
  weight_ = std::move(w);
  for (std::size_t n = 0; n < nets_->size(); ++n) {
    wq_[n] = weight_[n] * q_factor((*nets_)[n].sinks.size() + 1);
  }
}

void NetCostModel::finish_cost(Box& box, std::size_t net) const {
  const double span = static_cast<double>(box.x_hi - box.x_lo) +
                      static_cast<double>(box.y_hi - box.y_lo);
  box.cost = wq_[net] * span;
}

NetCostModel::Box NetCostModel::scan_box(const PlacedNet& n,
                                         const std::vector<BlockLoc>& locs,
                                         std::size_t a, const BlockLoc& new_a,
                                         std::size_t b,
                                         const BlockLoc& new_b) const {
  return full_scan(n, locs, a, new_a, b, new_b);
}

void NetCostModel::rebuild(const std::vector<BlockLoc>& locs) {
  boxes_.resize(nets_->size());
  cost_ = 0.0;
  static const BlockLoc kNowhere{};
  for (std::size_t n = 0; n < nets_->size(); ++n) {
    Box box = scan_box((*nets_)[n], locs, kNoBlock, kNowhere, kNoBlock,
                       kNowhere);
    finish_cost(box, n);
    boxes_[n] = box;
    cost_ += box.cost;
  }
}

double NetCostModel::unweighted_cost() const {
  double cost = 0.0;
  for (std::size_t n = 0; n < boxes_.size(); ++n) {
    const Box& b = boxes_[n];
    cost += q_factor((*nets_)[n].sinks.size() + 1) *
            (static_cast<double>(b.x_hi - b.x_lo) +
             static_cast<double>(b.y_hi - b.y_lo));
  }
  return cost;
}

double NetCostModel::propose(const std::vector<BlockLoc>& locs, std::size_t a,
                             const BlockLoc& new_a, std::size_t b,
                             const BlockLoc& new_b, Pending& out) const {
  // Delta accumulation mirrors the seed annealer's do_swap: nets of a
  // first (with both pin moves applied, so shared nets are fully costed
  // here), then nets of b that a does not touch — for_each_touched walks
  // that exact order. Evaluations whose net box provably does not change
  // contribute an exact nb.cost - old.cost == +0.0, and adding +0.0
  // never alters an IEEE sum (no partial sum here can be -0.0: each term
  // is either a true nonzero or +0.0), so skipping them keeps the
  // floating-point delta bit-identical to the seed's.
  // The evaluation body must be inlined into the merge walk: as an
  // out-of-line call it is invoked once per touched net (~50 per move)
  // and the call overhead plus register spills roughly doubles placer
  // wall time. always_inline keeps propose one flat frame, like the
  // seed annealer's fully-inlined do_swap loop.
  for_each_touched(a, b, [&](std::size_t n, bool move_a,
                             bool move_b) NF_ALWAYS_INLINE {
    const Box& old = boxes_[n];
    if (move_a != move_b) {
      // Single moving pin: if both its old and new sites are strictly
      // inside the box, neither geometry nor edge counts can change.
      const BlockLoc& from = move_a ? locs[a] : locs[b];
      const BlockLoc& to = move_a ? new_a : new_b;
      if (strictly_inside(from, old) && strictly_inside(to, old)) return;
    }
    Box nb = old;
    bool ok = true;
    if (move_a) {
      ok = move_dim(static_cast<std::uint16_t>(locs[a].x),
                    static_cast<std::uint16_t>(new_a.x), nb.x_lo, nb.x_hi,
                    nb.on_x_lo, nb.on_x_hi) &&
           move_dim(static_cast<std::uint16_t>(locs[a].y),
                    static_cast<std::uint16_t>(new_a.y), nb.y_lo, nb.y_hi,
                    nb.on_y_lo, nb.on_y_hi);
    }
    if (ok && move_b) {
      ok = move_dim(static_cast<std::uint16_t>(locs[b].x),
                    static_cast<std::uint16_t>(new_b.x), nb.x_lo, nb.x_hi,
                    nb.on_x_lo, nb.on_x_hi) &&
           move_dim(static_cast<std::uint16_t>(locs[b].y),
                    static_cast<std::uint16_t>(new_b.y), nb.y_lo, nb.y_hi,
                    nb.on_y_lo, nb.on_y_hi);
    }
    if (!ok) {
      nb = full_scan((*nets_)[n], locs, a, new_a, b, new_b);
      ++out.rescans;
    }
    if (same_geometry(nb, old)) return;  // exact +0.0, box record unchanged
    if (nb.x_lo == old.x_lo && nb.x_hi == old.x_hi && nb.y_lo == old.y_lo &&
        nb.y_hi == old.y_hi) {
      // Same span, different edge counts: cost is a pure function of the
      // coordinates, so reuse it bitwise and skip the +0.0 delta term.
      nb.cost = old.cost;
      out.nets.push_back({n, nb});
      return;
    }
    finish_cost(nb, n);
    out.delta += nb.cost - old.cost;
    out.nets.push_back({n, nb});
  });
  return out.delta;
}

NetCostModel::Box NetCostModel::rescan_net(std::size_t net,
                                           const std::vector<BlockLoc>& locs,
                                           std::size_t a, const BlockLoc& new_a,
                                           std::size_t b,
                                           const BlockLoc& new_b) const {
  Box nb = scan_box((*nets_)[net], locs, a, new_a, b, new_b);
  finish_cost(nb, net);
  return nb;
}

void NetCostModel::refresh_counts(const std::vector<BlockLoc>& locs) {
  static const BlockLoc kNowhere{};
  for (std::size_t n = 0; n < boxes_.size(); ++n) {
    const Box b =
        full_scan((*nets_)[n], locs, kNoBlock, kNowhere, kNoBlock, kNowhere);
    boxes_[n].on_x_lo = b.on_x_lo;
    boxes_[n].on_x_hi = b.on_x_hi;
    boxes_[n].on_y_lo = b.on_y_lo;
    boxes_[n].on_y_hi = b.on_y_hi;
  }
}

double NetCostModel::apply_swap(std::vector<BlockLoc>& locs, std::size_t a,
                                const BlockLoc& dest, std::size_t b,
                                Pending& undo) {
  const BlockLoc src = locs[a];
  locs[a] = dest;
  if (b != kNoBlock) locs[b] = src;
  // The seed annealer's do_swap evaluation order: rescan a's nets in
  // order, then b's nets in order. A shared net is rescanned twice; the
  // second visit recomputes the identical box against the
  // already-updated record, so its term is an exact +0.0 and the delta
  // stays bit-identical to the shared-net-once accumulation propose()
  // performs.
  double delta = 0.0;
  auto touch = [&](std::size_t blk) NF_ALWAYS_INLINE {
    for (std::size_t n : block_nets_[blk]) {
      Box nb = direct_scan((*nets_)[n], locs);
      finish_cost(nb, n);
      delta += nb.cost - boxes_[n].cost;
      undo.nets.push_back({n, boxes_[n]});
      boxes_[n] = nb;
    }
  };
  touch(a);
  if (b != kNoBlock) touch(b);
  return delta;
}

void NetCostModel::undo_swap(std::vector<BlockLoc>& locs, std::size_t a,
                             const BlockLoc& src, std::size_t b,
                             const BlockLoc& dest, const Pending& undo) {
  locs[a] = src;
  if (b != kNoBlock) locs[b] = dest;
  for (std::size_t i = undo.nets.size(); i-- > 0;) {
    boxes_[undo.nets[i].net] = undo.nets[i].box;
  }
}

double NetCostModel::propose_naive(const std::vector<BlockLoc>& locs,
                                   std::size_t a, const BlockLoc& new_a,
                                   std::size_t b, const BlockLoc& new_b,
                                   Pending& out) const {
  for (std::size_t n : block_nets_[a]) {
    Box nb = scan_box((*nets_)[n], locs, a, new_a, b, new_b);
    ++out.rescans;
    finish_cost(nb, n);
    out.delta += nb.cost - boxes_[n].cost;
    out.nets.push_back({n, nb});
  }
  if (b != kNoBlock) {
    for (std::size_t n : block_nets_[b]) {
      Box nb = scan_box((*nets_)[n], locs, a, new_a, b, new_b);
      ++out.rescans;
      finish_cost(nb, n);
      if (net_has((*nets_)[n], a)) {
        // Shared net: the seed recomputed it against its already-updated
        // box, contributing an exact +0.0 — reproduce that (the rescan
        // above is the work profile under measurement).
        for (const PendingNet& p : out.nets) {
          if (p.net == n) {
            out.delta += nb.cost - p.box.cost;
            break;
          }
        }
        continue;
      }
      out.delta += nb.cost - boxes_[n].cost;
      out.nets.push_back({n, nb});
    }
  }
  return out.delta;
}

void NetCostModel::commit(const Pending& p) {
  for (const PendingNet& pn : p.nets) boxes_[pn.net] = pn.box;
  cost_ += p.delta;
}

namespace {

/// One speculative move: drawn from a per-slot forked RNG stream, cost
/// evaluated against frozen state, committed (or replayed) serially.
struct Proposal {
  std::size_t a = NetCostModel::kNoBlock;
  std::size_t b = NetCostModel::kNoBlock;
  BlockLoc src, dest;
  bool is_logic = false;
  bool valid = false;  ///< Degenerate draws (same site / self swap) = false.
  int gen = 0;         ///< 0 uniform, 1 weighted-centroid, 2 median-region.
  double u = 0.0;      ///< Pre-drawn acceptance uniform (batch mode only).
  double delta = 0.0;
  NetCostModel::Pending pending;
};

struct Annealer {
  const Packing& pack;
  const ArchParams& arch;
  std::size_t nx, ny;
  PlaceOptions opt;
  Rng rng;

  std::vector<PlacedNet> nets;
  NetCostModel model;
  std::vector<BlockLoc> locs;
  PlaceCounters counters;

  // Occupancy: logic grid and IO pad slots.
  std::vector<std::size_t> logic_at;            // (x-1) + (y-1)*nx -> block
  std::vector<std::vector<std::size_t>> io_at;  // io site -> slots
  std::vector<std::pair<std::size_t, std::size_t>> io_sites;  // (x, y)
  std::vector<std::size_t> io_site_index;  // keyed like site_key()

  // Epoch stamps for batch-commit conflict detection (batch mode only).
  std::vector<std::uint32_t> net_epoch, block_epoch, slot_epoch;
  std::uint32_t epoch = 0;
  std::vector<Proposal> batch;

  // Directed-move state: adaptive generator probabilities (uniform,
  // centroid, median), per-temperature accept stats, and the
  // criticality-biased target blocks of the timing phase.
  std::array<double, 3> gen_weight{1.0, 0.0, 0.0};
  std::array<std::uint64_t, 3> gen_tried{}, gen_acc{};
  std::vector<std::size_t> crit_blocks;
  bool timing_phase = false;

  Proposal scratch;
  NetCostModel::Pending discard;
  NetCostModel::Pending repaired;  ///< Scratch for batch stale repair.

  static constexpr std::size_t kEmpty = static_cast<std::size_t>(-1);

  Annealer(const Packing& p, const ArchParams& a, std::size_t nx_,
           std::size_t ny_, const PlaceOptions& o,
           std::vector<PlacedNet> nets_in)
      : pack(p),
        arch(a),
        nx(nx_),
        ny(ny_),
        opt(o),
        rng(o.seed),
        nets(std::move(nets_in)),
        model(&nets, p.blocks.size()) {
    if (opt.directed_moves) gen_weight = {0.5, 0.25, 0.25};
  }

  std::size_t site_key(std::size_t x, std::size_t y) const {
    return y * (nx + 2) + x;
  }

  /// One stamp slot per (site, sub-slot) so batch conflict detection can
  /// see IO pad sub-slot collisions as well as logic-cell collisions.
  std::size_t slot_stamp_key(const BlockLoc& l) const {
    return site_key(l.x, l.y) * (arch.io_per_pad + 1) + l.sub;
  }

  void initial_place() {
    logic_at.assign(nx * ny, kEmpty);
    // Enumerate IO sites clockwise.
    for (std::size_t x = 1; x <= nx; ++x) io_sites.push_back({x, 0});
    for (std::size_t y = 1; y <= ny; ++y) io_sites.push_back({nx + 1, y});
    for (std::size_t x = 1; x <= nx; ++x) io_sites.push_back({x, ny + 1});
    for (std::size_t y = 1; y <= ny; ++y) io_sites.push_back({0, y});
    io_at.assign(io_sites.size(),
                 std::vector<std::size_t>(arch.io_per_pad, kEmpty));
    io_site_index.assign((nx + 2) * (ny + 2), kEmpty);
    for (std::size_t s = 0; s < io_sites.size(); ++s) {
      io_site_index[site_key(io_sites[s].first, io_sites[s].second)] = s;
    }

    locs.resize(pack.blocks.size());
    std::size_t next_logic = 0;
    std::size_t next_io = 0;
    for (std::size_t b = 0; b < pack.blocks.size(); ++b) {
      if (pack.blocks[b].type == PackedType::kLogic) {
        if (next_logic >= nx * ny) throw std::invalid_argument("grid too small");
        const std::size_t x = next_logic % nx + 1;
        const std::size_t y = next_logic / nx + 1;
        locs[b] = {x, y, 0};
        logic_at[(x - 1) + (y - 1) * nx] = b;
        ++next_logic;
      } else {
        const std::size_t site = next_io / arch.io_per_pad;
        const std::size_t sub = next_io % arch.io_per_pad;
        if (site >= io_sites.size()) {
          throw std::invalid_argument("not enough IO pad slots");
        }
        locs[b] = {io_sites[site].first, io_sites[site].second, sub};
        io_at[site][sub] = b;
        ++next_io;
      }
    }
  }

  void commit_occupancy(std::size_t a, std::size_t b, const BlockLoc& src,
                        const BlockLoc& dest, bool is_logic) {
    if (is_logic) {
      logic_at[(dest.x - 1) + (dest.y - 1) * nx] = a;
      logic_at[(src.x - 1) + (src.y - 1) * nx] = (b == kEmpty) ? kEmpty : b;
    } else {
      const std::size_t ds = io_site_index[site_key(dest.x, dest.y)];
      const std::size_t ss = io_site_index[site_key(src.x, src.y)];
      io_at[ds][dest.sub] = a;
      io_at[ss][src.sub] = (b == kEmpty) ? kEmpty : b;
    }
  }

  void apply_move(std::size_t a, std::size_t b, const BlockLoc& src,
                  const BlockLoc& dest, bool is_logic) {
    locs[a] = dest;
    if (b != kEmpty) locs[b] = src;
    commit_occupancy(a, b, src, dest, is_logic);
  }

  // ---- move generation --------------------------------------------------

  /// Pick the move generator for this proposal. Draws nothing in the
  /// default (uniform-only) configuration, keeping the seed RNG sequence.
  int pick_generator(Rng& r, bool allow_directed) const {
    if (!allow_directed) return 0;
    const double u = r.uniform();
    double acc = 0.0;
    for (int g = 0; g < 2; ++g) {
      acc += gen_weight[static_cast<std::size_t>(g)];
      if (u < acc) return g;
    }
    return 2;
  }

  /// Pick the block to move. Timing-phase directed runs bias half the
  /// picks toward blocks on (estimated) critical nets.
  std::size_t pick_block(Rng& r, bool allow_directed) const {
    if (allow_directed && timing_phase && !crit_blocks.empty() &&
        r.uniform() < 0.5) {
      return crit_blocks[r.uniform_int(crit_blocks.size())];
    }
    return r.uniform_int(pack.blocks.size());
  }

  /// Weighted centroid of the boxes of the nets touching `a` — the
  /// natural wirelength-minimizing target for the block.
  bool centroid_target(std::size_t a, std::size_t& tx, std::size_t& ty) const {
    double wx = 0.0, wy = 0.0, wsum = 0.0;
    for (std::size_t n : model.nets_of(a)) {
      const NetCostModel::Box& b = model.box(n);
      const double w = model.weight(n);
      wx += w * 0.5 * (static_cast<double>(b.x_lo) + static_cast<double>(b.x_hi));
      wy += w * 0.5 * (static_cast<double>(b.y_lo) + static_cast<double>(b.y_hi));
      wsum += w;
    }
    if (wsum <= 0.0) return false;
    tx = static_cast<std::size_t>(std::clamp<long long>(
        std::llround(wx / wsum), 1, static_cast<long long>(nx)));
    ty = static_cast<std::size_t>(std::clamp<long long>(
        std::llround(wy / wsum), 1, static_cast<long long>(ny)));
    return true;
  }

  /// Median of the bounding edges of the connected nets (VPR's "median
  /// region" generator): robust to one far-away net dragging the target.
  bool median_target(std::size_t a, std::size_t& tx, std::size_t& ty) const {
    const auto& ns = model.nets_of(a);
    if (ns.empty()) return false;
    std::vector<std::uint32_t> xs, ys;
    xs.reserve(2 * ns.size());
    ys.reserve(2 * ns.size());
    for (std::size_t n : ns) {
      const NetCostModel::Box& b = model.box(n);
      xs.push_back(b.x_lo);
      xs.push_back(b.x_hi);
      ys.push_back(b.y_lo);
      ys.push_back(b.y_hi);
    }
    const std::size_t mid = xs.size() / 2;
    std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                     xs.end());
    std::nth_element(ys.begin(), ys.begin() + static_cast<std::ptrdiff_t>(mid),
                     ys.end());
    tx = std::clamp<std::size_t>(xs[mid], 1, nx);
    ty = std::clamp<std::size_t>(ys[mid], 1, ny);
    return true;
  }

  /// Draw one move from `r` against the current (frozen, in batch mode)
  /// placement state. Reproduces the seed draw sequence exactly when
  /// allow_directed is false: block, then destination coordinates/site.
  void gen_move(Rng& r, double range, bool allow_directed, Proposal& p) const {
    p.valid = false;
    p.b = kEmpty;
    p.gen = pick_generator(r, allow_directed);
    p.a = pick_block(r, allow_directed);
    p.is_logic = pack.blocks[p.a].type == PackedType::kLogic;
    p.src = locs[p.a];
    if (p.is_logic) {
      std::size_t tx = 0, ty = 0;
      bool directed = false;
      if (p.gen == 1) directed = centroid_target(p.a, tx, ty);
      else if (p.gen == 2) directed = median_target(p.a, tx, ty);
      if (directed) {
        // Land within +-1 of the target so the generator explores the
        // neighbourhood instead of hammering one cell.
        const long long jx = static_cast<long long>(r.uniform_int(3)) - 1;
        const long long jy = static_cast<long long>(r.uniform_int(3)) - 1;
        p.dest.x = static_cast<std::size_t>(std::clamp<long long>(
            static_cast<long long>(tx) + jx, 1, static_cast<long long>(nx)));
        p.dest.y = static_cast<std::size_t>(std::clamp<long long>(
            static_cast<long long>(ty) + jy, 1, static_cast<long long>(ny)));
      } else {
        const auto rr = static_cast<std::size_t>(std::max(1.0, range));
        const auto pick_coord = [&](std::size_t cur, std::size_t limit) {
          const std::size_t lo = cur > rr ? cur - rr : 1;
          const std::size_t hi = std::min(limit, cur + rr);
          return lo + r.uniform_int(hi - lo + 1);
        };
        p.dest.x = pick_coord(p.src.x, nx);
        p.dest.y = pick_coord(p.src.y, ny);
      }
      p.dest.sub = 0;
      if (p.dest.x == p.src.x && p.dest.y == p.src.y) return;
      p.b = logic_at[(p.dest.x - 1) + (p.dest.y - 1) * nx];
    } else {
      const std::size_t site = r.uniform_int(io_sites.size());
      p.dest.x = io_sites[site].first;
      p.dest.y = io_sites[site].second;
      p.dest.sub = r.uniform_int(arch.io_per_pad);
      if (p.dest.x == p.src.x && p.dest.y == p.src.y &&
          p.dest.sub == p.src.sub) {
        return;
      }
      p.b = io_at[site][p.dest.sub];
    }
    if (p.b == p.a) {
      p.b = kEmpty;
      return;
    }
    // Only swap like-with-like (logic vs IO slots are inherently disjoint).
    p.valid = true;
  }

  // ---- serial discipline ------------------------------------------------

  /// One proposed move; returns true if accepted. With allow_directed
  /// false this is draw-for-draw and bit-for-bit the seed annealer's
  /// try_move, except that a rejected move discards the pending
  /// evaluation instead of mutating and recomputing back.
  bool try_move(double t, double range = 1e9, bool allow_directed = false) {
    ++counters.proposed;
    gen_move(rng, range, allow_directed, scratch);
    if (opt.directed_moves) {
      ++gen_tried[static_cast<std::size_t>(scratch.gen)];
      if (scratch.gen != 0) ++counters.directed;
    }
    if (!scratch.valid) return false;
    if (opt.naive_cost) {
      // Baseline kernel: evaluate through the non-mutating propose path
      // (full rescans, pending record, discard-and-recompute on reject)
      // so the bench can price the speculative-evaluation machinery the
      // batch mode runs on.
      scratch.pending.clear();
      const double delta = model.propose_naive(
          locs, scratch.a, scratch.dest, scratch.b, scratch.src,
          scratch.pending);
      counters.rescans += scratch.pending.rescans;
      const bool accept = delta <= 0.0 || rng.uniform() < std::exp(-delta / t);
      if (accept) {
        model.commit(scratch.pending);
        apply_move(scratch.a, scratch.b, scratch.src, scratch.dest,
                   scratch.is_logic);
        ++counters.accepted;
        if (opt.directed_moves) {
          ++gen_acc[static_cast<std::size_t>(scratch.gen)];
        }
        return true;
      }
      // The seed annealer mutated first and recomputed every touched net
      // again to undo a reject; charge the baseline the same second scan.
      discard.clear();
      model.propose_naive(locs, scratch.a, scratch.dest, scratch.b,
                          scratch.src, discard);
      counters.rescans += discard.rescans;
      return false;
    }
    // Serial fast path: mutate with an undo log. The evaluation is the
    // seed annealer's do_swap discipline (in-place rescans, no merge
    // walk), but where the seed paid a full second rescan to reverse a
    // rejected move, the undo log restores the displaced boxes
    // bit-for-bit with plain copies. The non-mutating propose/commit
    // pair remains the engine of the speculative batch mode, which
    // cannot mutate the frozen state it evaluates against.
    scratch.pending.clear();
    const double delta = model.apply_swap(locs, scratch.a, scratch.dest,
                                          scratch.b, scratch.pending);
    const bool accept = delta <= 0.0 || rng.uniform() < std::exp(-delta / t);
    if (accept) {
      model.book_delta(delta);
      commit_occupancy(scratch.a, scratch.b, scratch.src, scratch.dest,
                       scratch.is_logic);
      ++counters.accepted;
      if (opt.directed_moves) ++gen_acc[static_cast<std::size_t>(scratch.gen)];
      return true;
    }
    model.undo_swap(locs, scratch.a, scratch.src, scratch.b, scratch.dest,
                    scratch.pending);
    return false;
  }

  // ---- deterministic parallel batches -----------------------------------

  void init_batch_state() {
    net_epoch.assign(nets.size(), 0);
    block_epoch.assign(pack.blocks.size(), 0);
    slot_epoch.assign((nx + 2) * (ny + 2) * (arch.io_per_pad + 1), 0);
    batch.resize(opt.batch_moves);
  }

  std::size_t occupant(const Proposal& p) const {
    if (p.is_logic) return logic_at[(p.dest.x - 1) + (p.dest.y - 1) * nx];
    const std::size_t site = io_site_index[site_key(p.dest.x, p.dest.y)];
    return io_at[site][p.dest.sub];
  }

  /// Block-or-slot staleness: an earlier commit moved one of the blocks
  /// or retargeted one of the slots this proposal resolved against the
  /// frozen state. The move itself is no longer the move that was drawn
  /// — it must be fully re-resolved and re-evaluated.
  bool hard_stale(const Proposal& p) const {
    return block_epoch[p.a] == epoch ||
           (p.b != kEmpty && block_epoch[p.b] == epoch) ||
           slot_epoch[slot_stamp_key(p.src)] == epoch ||
           slot_epoch[slot_stamp_key(p.dest)] == epoch;
  }

  /// Net-only staleness: the move is still exactly the drawn move (both
  /// blocks and slots untouched), but an earlier commit moved a pin of
  /// some net this proposal also touches, so part of its frozen cost
  /// evaluation is invalid. Repairable per net — no full re-evaluation.
  bool nets_stale(const Proposal& p) const {
    for (std::size_t n : model.nets_of(p.a)) {
      if (net_epoch[n] == epoch) return true;
    }
    if (p.b != kEmpty) {
      for (std::size_t n : model.nets_of(p.b)) {
        if (net_epoch[n] == epoch) return true;
      }
    }
    return false;
  }

  void stamp(const Proposal& p) {
    block_epoch[p.a] = epoch;
    if (p.b != kEmpty) block_epoch[p.b] = epoch;
    slot_epoch[slot_stamp_key(p.src)] = epoch;
    slot_epoch[slot_stamp_key(p.dest)] = epoch;
    // Every touched net is stamped, not just those whose box changed: a
    // frozen evaluation elsewhere may have derived its entry from a full
    // rescan, which reads every pin position of the net — so any pin
    // move at all invalidates reuse of that entry, box change or not.
    for (std::size_t n : model.nets_of(p.a)) net_epoch[n] = epoch;
    if (p.b != kEmpty) {
      for (std::size_t n : model.nets_of(p.b)) net_epoch[n] = epoch;
    }
  }

  /// Repair a net-only-stale proposal in place: walk the canonical
  /// touched-net order with a cursor into the frozen pending entries
  /// (they were produced in that same order). Entries of epoch-clean
  /// nets are reused as-is — no pin of such a net moved this batch, so
  /// the frozen evaluation is still exact — and only the epoch-stamped
  /// nets are rescanned against the live state. Serial (commit loop)
  /// only; deterministic because it depends only on slot order.
  void repair(Proposal& p) {
    repaired.clear();
    const std::vector<NetCostModel::PendingNet>& pend = p.pending.nets;
    std::size_t cursor = 0;
    model.for_each_touched(p.a, p.b, [&](std::size_t n, bool, bool) {
      const bool has_entry = cursor < pend.size() && pend[cursor].net == n;
      if (net_epoch[n] != epoch) {
        if (has_entry) {
          repaired.delta += pend[cursor].box.cost - model.box(n).cost;
          repaired.nets.push_back(pend[cursor]);
        }
      } else {
        NetCostModel::Box nb =
            model.rescan_net(n, locs, p.a, p.dest, p.b, p.src);
        ++repaired.rescans;
        repaired.delta += nb.cost - model.box(n).cost;
        repaired.nets.push_back({n, nb});
      }
      if (has_entry) ++cursor;
    });
    p.pending.nets.swap(repaired.nets);
    p.pending.delta = repaired.delta;  // commit() applies pending.delta
    p.pending.rescans += repaired.rescans;
    p.delta = repaired.delta;
    counters.rescans += repaired.rescans;
  }

  /// Generate + evaluate `count` speculative moves in parallel against
  /// the frozen state, then commit serially in slot order. One next_u64
  /// on the main stream is the fork base; slot i derives its own stream,
  /// so the outcome depends only on the batch structure — never on the
  /// thread count. Returns the number of accepted moves.
  std::size_t run_batch(double t, double range, std::size_t count) {
    const std::uint64_t base = rng.next_u64();
    const bool allow_directed = opt.directed_moves;
    parallel_for(count, [&](std::size_t i) {
      Rng r = Rng::from_stream(base, i);
      Proposal& p = batch[i];
      p.pending.clear();
      gen_move(r, range, allow_directed, p);
      p.u = r.uniform();  // pre-drawn: replay must not reorder draws
      if (p.valid) {
        p.delta = model.propose(locs, p.a, p.dest, p.b, p.src, p.pending);
      }
    });
    ++counters.batches;
    ++epoch;
    std::size_t accepted = 0;
    for (std::size_t i = 0; i < count; ++i) {
      Proposal& p = batch[i];
      ++counters.proposed;
      if (opt.directed_moves) {
        ++gen_tried[static_cast<std::size_t>(p.gen)];
        if (p.gen != 0) ++counters.directed;
      }
      if (!p.valid) continue;
      counters.rescans += p.pending.rescans;
      if (hard_stale(p)) {
        // An earlier commit in this batch moved one of the blocks or
        // retargeted one of the slots this proposal read frozen: the
        // drawn move itself is stale. Re-resolve and re-evaluate
        // serially against the live state, keeping the slot's pre-drawn
        // uniform.
        ++counters.conflicts;
        p.src = locs[p.a];
        if (p.is_logic) {
          if (p.dest.x == p.src.x && p.dest.y == p.src.y) continue;
        } else if (p.dest.x == p.src.x && p.dest.y == p.src.y &&
                   p.dest.sub == p.src.sub) {
          continue;
        }
        p.b = occupant(p);
        if (p.b == p.a) continue;
        p.pending.clear();
        p.delta = model.propose(locs, p.a, p.dest, p.b, p.src, p.pending);
        counters.rescans += p.pending.rescans;
        ++counters.replays;
      } else if (nets_stale(p)) {
        // The move is intact but an earlier commit moved pins of nets it
        // touches: patch only those nets' evaluations.
        ++counters.conflicts;
        repair(p);
        ++counters.repairs;
      }
      const bool accept = p.delta <= 0.0 || p.u < std::exp(-p.delta / t);
      if (!accept) continue;
      model.commit(p.pending);
      apply_move(p.a, p.b, p.src, p.dest, p.is_logic);
      stamp(p);
      ++accepted;
      ++counters.accepted;
      if (opt.directed_moves) ++gen_acc[static_cast<std::size_t>(p.gen)];
    }
    return accepted;
  }

  // ---- schedule ---------------------------------------------------------

  std::size_t sweep(double t, double range, std::size_t moves) {
    std::size_t accepted = 0;
    if (opt.batch_moves >= 2) {
      std::size_t done = 0;
      while (done < moves) {
        const std::size_t n = std::min(opt.batch_moves, moves - done);
        accepted += run_batch(t, range, n);
        done += n;
      }
    } else {
      for (std::size_t m = 0; m < moves; ++m) {
        accepted += try_move(t, range, opt.directed_moves);
      }
    }
    return accepted;
  }

  /// Re-balance the generator probabilities toward whichever generator
  /// is currently earning acceptances, with a floor so none starves.
  void update_gen_weights() {
    std::array<double, 3> w{};
    double sum = 0.0;
    for (std::size_t g = 0; g < 3; ++g) {
      const double rate = gen_tried[g]
                              ? static_cast<double>(gen_acc[g]) /
                                    static_cast<double>(gen_tried[g])
                              : 0.5;
      w[g] = 0.1 + rate;
      sum += w[g];
      gen_tried[g] = 0;
      gen_acc[g] = 0;
    }
    for (std::size_t g = 0; g < 3; ++g) gen_weight[g] = w[g] / sum;
  }

  void anneal(double t_start) {
    const std::size_t n_blocks = pack.blocks.size();
    const auto moves_per_t = static_cast<std::size_t>(
        std::max(1.0, opt.inner_num *
                          std::pow(static_cast<double>(n_blocks), 4.0 / 3.0)));
    double t = t_start;
    double range = static_cast<double>(std::max(nx, ny));
    const double exit_t =
        0.005 * model.total_cost() /
        static_cast<double>(std::max<std::size_t>(nets.size(), 1));
    while (t > exit_t) {
      const std::size_t accepted = sweep(t, range, moves_per_t);
      const double rate =
          static_cast<double>(accepted) / static_cast<double>(moves_per_t);
      // VPR's adaptive schedule.
      double alpha;
      if (rate > 0.96) alpha = 0.5;
      else if (rate > 0.8) alpha = 0.9;
      else if (rate > 0.15) alpha = 0.95;
      else alpha = 0.8;
      t *= alpha;
      // Shrink the move window toward the sweet-spot 44% acceptance.
      range *= 1.0 - 0.44 + rate;
      range = std::clamp(range, 1.0, static_cast<double>(std::max(nx, ny)));
      if (opt.directed_moves) update_gen_weights();
    }
  }

  /// Initial temperature: 20x the std-dev of random-move deltas [Betz 99].
  /// Always probes with the serial uniform discipline, so it is both
  /// seed-identical in the default configuration and thread-count
  /// independent in every other one.
  double probe_temperature() {
    const std::size_t n_blocks = pack.blocks.size();
    double sum = 0.0, sum2 = 0.0;
    const std::size_t probes = std::min<std::size_t>(n_blocks, 200);
    for (std::size_t i = 0; i < probes; ++i) {
      const double before = model.total_cost();
      try_move(1e30);  // always accept
      const double d = model.total_cost() - before;
      sum += d;
      sum2 += d * d;
    }
    const double mean = sum / static_cast<double>(probes);
    const double var = sum2 / static_cast<double>(probes) - mean * mean;
    return 20.0 * std::sqrt(std::max(var, 1e-12));
  }

  void run(const Netlist& nl) {
    initial_place();
    model.rebuild(locs);
    if (nets.empty()) return;
    if (opt.batch_moves >= 2) init_batch_state();
    const double t_start = probe_temperature();
    // The serial probe above ran count-free apply_swap scans; batch-mode
    // move_dim needs the edge counts back before the first batch.
    if (opt.batch_moves >= 2) model.refresh_counts(locs);
    anneal(t_start);

    if (opt.timing_driven) {
      // Criticality-weighted refinement: nets on (estimated) critical
      // paths pull harder in a second anneal at medium temperature. The
      // estimate is the shared utility the incremental STA also seeds
      // from, keeping placement and routing on one criticality notion.
      const auto crit = placement_net_criticality(nl, nets, locs);
      std::vector<double> w(nets.size(), 1.0);
      for (std::size_t n = 0; n < nets.size(); ++n) {
        w[n] = 1.0 + opt.timing_weight * crit[n] * crit[n];
      }
      model.set_weights(std::move(w));
      model.rebuild(locs);  // re-evaluate boxes under the new weights
      timing_phase = true;
      if (opt.directed_moves) {
        for (std::size_t n = 0; n < nets.size(); ++n) {
          if (crit[n] < 0.8) continue;
          crit_blocks.push_back(nets[n].driver);
          for (std::size_t s : nets[n].sinks) crit_blocks.push_back(s);
        }
        std::sort(crit_blocks.begin(), crit_blocks.end());
        crit_blocks.erase(
            std::unique(crit_blocks.begin(), crit_blocks.end()),
            crit_blocks.end());
      }
      const double exit_t =
          0.005 * model.total_cost() /
          static_cast<double>(std::max<std::size_t>(nets.size(), 1));
      anneal(50.0 * exit_t);
    }
  }
};

}  // namespace

std::optional<PlacedNet> make_placed_net(const Netlist& nl, const Packing& p,
                                         NetId n) {
  if (p.net_absorbed[n]) return std::nullopt;
  const Net& net = nl.net(n);
  PlacedNet pn;
  pn.net = n;
  pn.driver = p.block_owner[net.driver];
  std::unordered_set<std::size_t> sink_blocks;
  for (BlockId s : net.sinks) {
    const std::size_t owner = p.block_owner[s];
    if (owner != pn.driver) sink_blocks.insert(owner);
  }
  if (sink_blocks.empty()) return std::nullopt;  // fully local (or dangling)
  pn.sinks.assign(sink_blocks.begin(), sink_blocks.end());
  std::sort(pn.sinks.begin(), pn.sinks.end());
  return pn;
}

std::vector<PlacedNet> extract_placed_nets(const Netlist& nl,
                                           const Packing& p) {
  std::vector<PlacedNet> nets;
  for (NetId n = 0; n < nl.net_count(); ++n) {
    if (auto pn = make_placed_net(nl, p, n)) nets.push_back(std::move(*pn));
  }
  return nets;
}

std::vector<double> placement_net_criticality(
    const Netlist& nl, const std::vector<PlacedNet>& nets,
    const std::vector<BlockLoc>& locs) {
  std::vector<std::size_t> net_to_placed(nl.net_count(), kInvalidId);
  for (std::size_t n = 0; n < nets.size(); ++n) {
    net_to_placed[nets[n].net] = n;
  }
  // A net's delay proxy is its bounding-box semiperimeter (absorbed nets
  // cost a fixed local-feedback fraction).
  auto net_delay = [&](NetId n) {
    const std::size_t idx = net_to_placed[n];
    if (idx == kInvalidId) return 0.3;  // local feedback
    const PlacedNet& pn = nets[idx];
    std::size_t x_lo = locs[pn.driver].x, x_hi = x_lo;
    std::size_t y_lo = locs[pn.driver].y, y_hi = y_lo;
    for (std::size_t s : pn.sinks) {
      x_lo = std::min(x_lo, locs[s].x);
      x_hi = std::max(x_hi, locs[s].x);
      y_lo = std::min(y_lo, locs[s].y);
      y_hi = std::max(y_hi, locs[s].y);
    }
    return 1.0 + static_cast<double>((x_hi - x_lo) + (y_hi - y_lo));
  };

  // Forward arrival over LUTs (latches/PIs are start points, delay 1 per
  // LUT level).
  std::vector<double> arrival(nl.block_count(), 0.0);
  std::vector<std::size_t> pending(nl.block_count(), 0);
  std::vector<BlockId> ready;
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const Block& blk = nl.block(b);
    if (blk.type == BlockType::kLut) {
      std::size_t comb = 0;
      for (NetId n : blk.inputs) {
        if (nl.block(nl.net(n).driver).type == BlockType::kLut) ++comb;
      }
      pending[b] = comb;
      if (comb == 0) ready.push_back(b);
    }
  }
  std::vector<BlockId> topo;
  while (!ready.empty()) {
    const BlockId b = ready.back();
    ready.pop_back();
    topo.push_back(b);
    const Block& blk = nl.block(b);
    double arr = 0.0;
    for (NetId n : blk.inputs) {
      arr = std::max(arr, arrival[nl.net(n).driver] + net_delay(n));
    }
    arrival[b] = arr + 1.0;
    for (BlockId sk : nl.net(blk.output).sinks) {
      if (nl.block(sk).type == BlockType::kLut && pending[sk] > 0) {
        if (--pending[sk] == 0) ready.push_back(sk);
      }
    }
  }
  // LUTs still pending were never drained: they sit on a combinational
  // cycle the topological pass cannot order, so their arrival times are
  // meaningless (stuck at 0). Flag them and treat every net touching one
  // as fully critical (zero slack) instead of silently under-weighting.
  std::vector<char> in_cycle(nl.block_count(), 0);
  std::size_t n_cyclic = 0;
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    if (nl.block(b).type == BlockType::kLut && pending[b] > 0) {
      in_cycle[b] = 1;
      ++n_cyclic;
    }
  }
  if (n_cyclic > 0) {
    std::fprintf(stderr,
                 "placement_net_criticality: %zu LUT(s) on combinational "
                 "cycles have no topological arrival time; nets touching "
                 "them fall back to zero-slack (fully critical) shaping\n",
                 n_cyclic);
  }
  double d_max = 1.0;
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const Block& blk = nl.block(b);
    if (blk.type == BlockType::kLatch || blk.type == BlockType::kOutput) {
      for (NetId n : blk.inputs) {
        d_max = std::max(d_max, arrival[nl.net(n).driver] + net_delay(n));
      }
    }
  }
  // Backward required times over the reverse topological order.
  std::vector<double> required(nl.block_count(), d_max);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const BlockId b = *it;
    const Block& blk = nl.block(b);
    double req = d_max;
    for (BlockId sk : nl.net(blk.output).sinks) {
      const Block& sb = nl.block(sk);
      const double d = net_delay(blk.output);
      if (sb.type == BlockType::kLut) {
        req = std::min(req, required[sk] - 1.0 - d);
      } else {
        req = std::min(req, d_max - d);
      }
    }
    required[b] = req;
  }
  // Criticality per placed net from the tightest sink's slack.
  std::vector<double> crit(nets.size(), 0.0);
  for (std::size_t n = 0; n < nets.size(); ++n) {
    const NetId net_id = nets[n].net;
    const BlockId drv = nl.net(net_id).driver;
    bool cyclic = nl.block(drv).type == BlockType::kLut && in_cycle[drv];
    const double arr = arrival[drv];
    double worst_req = d_max;
    for (BlockId sk : nl.net(net_id).sinks) {
      if (nl.block(sk).type == BlockType::kLut) {
        worst_req = std::min(worst_req, required[sk] - 1.0);
        if (in_cycle[sk]) cyclic = true;
      }
    }
    if (cyclic) {
      crit[n] = criticality_from_slack(0.0, d_max);
      continue;
    }
    const double slack = worst_req - arr - net_delay(net_id);
    crit[n] = criticality_from_slack(slack, d_max);
  }
  return crit;
}

Placement place(const Netlist& nl, const Packing& p, const ArchParams& arch,
                std::size_t nx, std::size_t ny, const PlaceOptions& opt) {
  Annealer an(p, arch, nx, ny, opt, extract_placed_nets(nl, p));
  an.run(nl);

  Placement out;
  out.nx = nx;
  out.ny = ny;
  out.locs = std::move(an.locs);
  out.final_weighted_cost = an.model.total_cost();
  // The timing-driven anneal minimizes the weighted cost; report the
  // unweighted bounding-box cost separately so final_cost always matches
  // placement_cost()'s definition.
  out.final_cost = opt.timing_driven ? an.model.unweighted_cost()
                                     : an.model.total_cost();
  out.counters = an.counters;
  out.nets = std::move(an.nets);
  return out;
}

double placement_cost(const Placement& pl) {
  double cost = 0.0;
  for (const auto& n : pl.nets) {
    std::size_t x_lo = pl.locs[n.driver].x, x_hi = x_lo;
    std::size_t y_lo = pl.locs[n.driver].y, y_hi = y_lo;
    for (std::size_t s : n.sinks) {
      x_lo = std::min(x_lo, pl.locs[s].x);
      x_hi = std::max(x_hi, pl.locs[s].x);
      y_lo = std::min(y_lo, pl.locs[s].y);
      y_hi = std::max(y_hi, pl.locs[s].y);
    }
    cost += q_factor(n.sinks.size() + 1) *
            (static_cast<double>(x_hi - x_lo) + static_cast<double>(y_hi - y_lo));
  }
  return cost;
}

void check_placement(const Packing& p, const ArchParams& arch,
                     const Placement& pl) {
  if (pl.locs.size() != p.blocks.size()) {
    throw std::logic_error("check_placement: loc count mismatch");
  }
  std::unordered_set<std::size_t> used;
  for (std::size_t b = 0; b < p.blocks.size(); ++b) {
    const BlockLoc& l = pl.locs[b];
    const bool is_logic = p.blocks[b].type == PackedType::kLogic;
    const bool in_core = l.x >= 1 && l.x <= pl.nx && l.y >= 1 && l.y <= pl.ny;
    const bool border_x = (l.x == 0 || l.x == pl.nx + 1);
    const bool border_y = (l.y == 0 || l.y == pl.ny + 1);
    const bool on_border = border_x != border_y;
    if (is_logic) {
      if (!in_core) throw std::logic_error("logic block off-grid");
      if (l.sub != 0) throw std::logic_error("logic block sub-slot");
    } else {
      if (!on_border) throw std::logic_error("IO block not on border");
      if (l.sub >= arch.io_per_pad) throw std::logic_error("IO sub overflow");
    }
    const std::size_t key =
        (l.y * (pl.nx + 2) + l.x) * (arch.io_per_pad + 1) + l.sub;
    if (!used.insert(key).second) {
      throw std::logic_error("check_placement: overlapping blocks");
    }
  }
}

}  // namespace nemfpga
