#include "place/place.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "timing/criticality.hpp"

namespace nemfpga {
namespace {

/// VPR's bounding-box fanout correction q(terminals) [Betz 99]: accounts
/// for the underestimate of HPWL on multi-terminal nets.
double q_factor(std::size_t terminals) {
  static constexpr double kTable[] = {1.0,    1.0,    1.0,    1.0,    1.0828,
                                      1.1536, 1.2206, 1.2823, 1.3385, 1.3991,
                                      1.4493, 1.4974, 1.5455, 1.5937, 1.6418,
                                      1.6899, 1.7304, 1.7709, 1.8114, 1.8519,
                                      1.8924, 1.9288, 1.9652, 2.0015, 2.0379,
                                      2.0743, 2.1061, 2.1379, 2.1698, 2.2016,
                                      2.2334};
  if (terminals < std::size(kTable)) return kTable[terminals];
  return 2.2334 + 0.0616 * (static_cast<double>(terminals) - 30.0) / 5.0;
}

struct NetBox {
  std::size_t x_lo = 0, x_hi = 0, y_lo = 0, y_hi = 0;
  double cost = 0.0;
};

struct Annealer {
  const Packing& pack;
  const ArchParams& arch;
  std::size_t nx, ny;
  Rng rng;

  std::vector<BlockLoc> locs;
  std::vector<PlacedNet> nets;
  std::vector<double> net_weight;  // timing-driven criticality weights
  std::vector<std::vector<std::size_t>> block_nets;  // nets touching block
  std::vector<NetBox> boxes;
  double cost = 0.0;

  // Occupancy: logic grid and IO pad slots.
  std::vector<std::size_t> logic_at;            // (x-1) + (y-1)*nx -> block
  std::vector<std::vector<std::size_t>> io_at;  // io site -> slots
  std::vector<std::pair<std::size_t, std::size_t>> io_sites;  // (x, y)
  std::vector<std::size_t> io_site_index;  // keyed like site_key()

  static constexpr std::size_t kEmpty = static_cast<std::size_t>(-1);

  std::size_t site_key(std::size_t x, std::size_t y) const {
    return y * (nx + 2) + x;
  }

  NetBox compute_box(const PlacedNet& n) const {
    NetBox b;
    const BlockLoc& d = locs[n.driver];
    b.x_lo = b.x_hi = d.x;
    b.y_lo = b.y_hi = d.y;
    for (std::size_t s : n.sinks) {
      const BlockLoc& l = locs[s];
      b.x_lo = std::min(b.x_lo, l.x);
      b.x_hi = std::max(b.x_hi, l.x);
      b.y_lo = std::min(b.y_lo, l.y);
      b.y_hi = std::max(b.y_hi, l.y);
    }
    const double span = static_cast<double>(b.x_hi - b.x_lo) +
                        static_cast<double>(b.y_hi - b.y_lo);
    const std::size_t idx = static_cast<std::size_t>(&n - nets.data());
    const double w = idx < net_weight.size() ? net_weight[idx] : 1.0;
    b.cost = w * q_factor(n.sinks.size() + 1) * span;
    return b;
  }

  void initial_place() {
    logic_at.assign(nx * ny, kEmpty);
    // Enumerate IO sites clockwise.
    for (std::size_t x = 1; x <= nx; ++x) io_sites.push_back({x, 0});
    for (std::size_t y = 1; y <= ny; ++y) io_sites.push_back({nx + 1, y});
    for (std::size_t x = 1; x <= nx; ++x) io_sites.push_back({x, ny + 1});
    for (std::size_t y = 1; y <= ny; ++y) io_sites.push_back({0, y});
    io_at.assign(io_sites.size(),
                 std::vector<std::size_t>(arch.io_per_pad, kEmpty));
    io_site_index.assign((nx + 2) * (ny + 2), kEmpty);
    for (std::size_t s = 0; s < io_sites.size(); ++s) {
      io_site_index[site_key(io_sites[s].first, io_sites[s].second)] = s;
    }

    locs.resize(pack.blocks.size());
    std::size_t next_logic = 0;
    std::size_t next_io = 0;
    for (std::size_t b = 0; b < pack.blocks.size(); ++b) {
      if (pack.blocks[b].type == PackedType::kLogic) {
        if (next_logic >= nx * ny) throw std::invalid_argument("grid too small");
        const std::size_t x = next_logic % nx + 1;
        const std::size_t y = next_logic / nx + 1;
        locs[b] = {x, y, 0};
        logic_at[(x - 1) + (y - 1) * nx] = b;
        ++next_logic;
      } else {
        const std::size_t site = next_io / arch.io_per_pad;
        const std::size_t sub = next_io % arch.io_per_pad;
        if (site >= io_sites.size()) {
          throw std::invalid_argument("not enough IO pad slots");
        }
        locs[b] = {io_sites[site].first, io_sites[site].second, sub};
        io_at[site][sub] = b;
        ++next_io;
      }
    }
  }

  void init_cost() {
    boxes.resize(nets.size());
    cost = 0.0;
    for (std::size_t n = 0; n < nets.size(); ++n) {
      boxes[n] = compute_box(nets[n]);
      cost += boxes[n].cost;
    }
    block_nets.assign(pack.blocks.size(), {});
    for (std::size_t n = 0; n < nets.size(); ++n) {
      std::unordered_set<std::size_t> blocks;
      blocks.insert(nets[n].driver);
      for (std::size_t s : nets[n].sinks) blocks.insert(s);
      for (std::size_t b : blocks) block_nets[b].push_back(n);
    }
  }

  /// Cost delta of swapping blocks a (must be valid) and b (may be kEmpty),
  /// where b occupies the destination. Applies the swap; returns delta.
  double do_swap(std::size_t a, std::size_t b, const BlockLoc& dest) {
    const BlockLoc src = locs[a];
    locs[a] = dest;
    if (b != kEmpty) locs[b] = src;

    // Recompute affected nets.
    double delta = 0.0;
    auto touch = [&](std::size_t blk) {
      for (std::size_t n : block_nets[blk]) {
        const NetBox nb = compute_box(nets[n]);
        delta += nb.cost - boxes[n].cost;
        boxes[n] = nb;
      }
    };
    touch(a);
    if (b != kEmpty) {
      // Avoid double-recompute of shared nets: recompute is idempotent
      // (box replaced, delta counted once because boxes[] was updated).
      touch(b);
    }
    return delta;
  }

  void commit_occupancy(std::size_t a, std::size_t b, const BlockLoc& src,
                        const BlockLoc& dest, bool is_logic) {
    if (is_logic) {
      logic_at[(dest.x - 1) + (dest.y - 1) * nx] = a;
      logic_at[(src.x - 1) + (src.y - 1) * nx] = (b == kEmpty) ? kEmpty : b;
    } else {
      const std::size_t ds = io_site_index[site_key(dest.x, dest.y)];
      const std::size_t ss = io_site_index[site_key(src.x, src.y)];
      io_at[ds][dest.sub] = a;
      io_at[ss][src.sub] = (b == kEmpty) ? kEmpty : b;
    }
  }

  void anneal(const PlaceOptions& opt, double t_start) {
    const std::size_t n_blocks = pack.blocks.size();
    const auto moves_per_t = static_cast<std::size_t>(
        std::max(1.0, opt.inner_num *
                          std::pow(static_cast<double>(n_blocks), 4.0 / 3.0)));
    double t = t_start;
    double range = static_cast<double>(std::max(nx, ny));
    const double exit_t =
        0.005 * cost / static_cast<double>(std::max<std::size_t>(nets.size(), 1));
    while (t > exit_t) {
      std::size_t accepted = 0;
      for (std::size_t m = 0; m < moves_per_t; ++m) {
        accepted += try_move(t, range);
      }
      const double rate =
          static_cast<double>(accepted) / static_cast<double>(moves_per_t);
      // VPR's adaptive schedule.
      double alpha;
      if (rate > 0.96) alpha = 0.5;
      else if (rate > 0.8) alpha = 0.9;
      else if (rate > 0.15) alpha = 0.95;
      else alpha = 0.8;
      t *= alpha;
      // Shrink the move window toward the sweet-spot 44% acceptance.
      range *= 1.0 - 0.44 + rate;
      range = std::clamp(range, 1.0, static_cast<double>(std::max(nx, ny)));
    }
  }

  /// Initial temperature: 20x the std-dev of random-move deltas [Betz 99].
  double probe_temperature() {
    const std::size_t n_blocks = pack.blocks.size();
    double sum = 0.0, sum2 = 0.0;
    const std::size_t probes = std::min<std::size_t>(n_blocks, 200);
    for (std::size_t i = 0; i < probes; ++i) {
      const double before = cost;
      try_move(1e30);  // always accept
      const double d = cost - before;
      sum += d;
      sum2 += d * d;
    }
    const double mean = sum / static_cast<double>(probes);
    const double var = sum2 / static_cast<double>(probes) - mean * mean;
    return 20.0 * std::sqrt(std::max(var, 1e-12));
  }

  void run(const PlaceOptions& opt, const Netlist& nl, const Packing& p) {
    initial_place();
    net_weight.assign(nets.size(), 1.0);
    init_cost();
    if (nets.empty()) return;
    anneal(opt, probe_temperature());

    if (opt.timing_driven) {
      // Criticality-weighted refinement: nets on (estimated) critical
      // paths pull harder in a second anneal at medium temperature. The
      // estimate is the shared utility the incremental STA also seeds
      // from, keeping placement and routing on one criticality notion.
      const auto crit = placement_net_criticality(nl, nets, locs);
      for (std::size_t n = 0; n < nets.size(); ++n) {
        net_weight[n] = 1.0 + opt.timing_weight * crit[n] * crit[n];
      }
      init_cost();  // re-evaluate boxes under the new weights
      const double exit_t = 0.005 * cost /
                            static_cast<double>(std::max<std::size_t>(nets.size(), 1));
      anneal(opt, 50.0 * exit_t);
    }
  }

  /// One proposed move; returns true if accepted.
  bool try_move(double t, double range = 1e9) {
    const std::size_t a = rng.uniform_int(pack.blocks.size());
    const bool is_logic = pack.blocks[a].type == PackedType::kLogic;
    const BlockLoc src = locs[a];

    BlockLoc dest;
    std::size_t b = kEmpty;
    if (is_logic) {
      const auto r = static_cast<std::size_t>(std::max(1.0, range));
      const auto pick_coord = [&](std::size_t cur, std::size_t limit) {
        const std::size_t lo = cur > r ? cur - r : 1;
        const std::size_t hi = std::min(limit, cur + r);
        return lo + rng.uniform_int(hi - lo + 1);
      };
      dest.x = pick_coord(src.x, nx);
      dest.y = pick_coord(src.y, ny);
      dest.sub = 0;
      if (dest.x == src.x && dest.y == src.y) return false;
      b = logic_at[(dest.x - 1) + (dest.y - 1) * nx];
    } else {
      const std::size_t site = rng.uniform_int(io_sites.size());
      dest.x = io_sites[site].first;
      dest.y = io_sites[site].second;
      dest.sub = rng.uniform_int(arch.io_per_pad);
      if (dest.x == src.x && dest.y == src.y && dest.sub == src.sub) {
        return false;
      }
      b = io_at[site][dest.sub];
    }
    if (b == a) return false;
    // Only swap like-with-like (logic vs IO slots are inherently disjoint).

    const double delta = do_swap(a, b, dest);
    const bool accept = delta <= 0.0 || rng.uniform() < std::exp(-delta / t);
    if (accept) {
      cost += delta;
      commit_occupancy(a, b, src, dest, is_logic);
      return true;
    }
    // Undo.
    const double back = do_swap(a, b, src);
    (void)back;
    if (b != kEmpty) locs[b] = dest;
    return false;
  }
};

}  // namespace

std::vector<PlacedNet> extract_placed_nets(const Netlist& nl,
                                           const Packing& p) {
  std::vector<PlacedNet> nets;
  for (NetId n = 0; n < nl.net_count(); ++n) {
    if (p.net_absorbed[n]) continue;
    const Net& net = nl.net(n);
    PlacedNet pn;
    pn.net = n;
    pn.driver = p.block_owner[net.driver];
    std::unordered_set<std::size_t> sink_blocks;
    for (BlockId s : net.sinks) {
      const std::size_t owner = p.block_owner[s];
      if (owner != pn.driver) sink_blocks.insert(owner);
    }
    if (sink_blocks.empty()) continue;  // fully local (or dangling)
    pn.sinks.assign(sink_blocks.begin(), sink_blocks.end());
    std::sort(pn.sinks.begin(), pn.sinks.end());
    nets.push_back(std::move(pn));
  }
  return nets;
}

std::vector<double> placement_net_criticality(
    const Netlist& nl, const std::vector<PlacedNet>& nets,
    const std::vector<BlockLoc>& locs) {
  std::vector<std::size_t> net_to_placed(nl.net_count(), kInvalidId);
  for (std::size_t n = 0; n < nets.size(); ++n) {
    net_to_placed[nets[n].net] = n;
  }
  // A net's delay proxy is its bounding-box semiperimeter (absorbed nets
  // cost a fixed local-feedback fraction).
  auto net_delay = [&](NetId n) {
    const std::size_t idx = net_to_placed[n];
    if (idx == kInvalidId) return 0.3;  // local feedback
    const PlacedNet& pn = nets[idx];
    std::size_t x_lo = locs[pn.driver].x, x_hi = x_lo;
    std::size_t y_lo = locs[pn.driver].y, y_hi = y_lo;
    for (std::size_t s : pn.sinks) {
      x_lo = std::min(x_lo, locs[s].x);
      x_hi = std::max(x_hi, locs[s].x);
      y_lo = std::min(y_lo, locs[s].y);
      y_hi = std::max(y_hi, locs[s].y);
    }
    return 1.0 + static_cast<double>((x_hi - x_lo) + (y_hi - y_lo));
  };

  // Forward arrival over LUTs (latches/PIs are start points, delay 1 per
  // LUT level).
  std::vector<double> arrival(nl.block_count(), 0.0);
  std::vector<std::size_t> pending(nl.block_count(), 0);
  std::vector<BlockId> ready;
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const Block& blk = nl.block(b);
    if (blk.type == BlockType::kLut) {
      std::size_t comb = 0;
      for (NetId n : blk.inputs) {
        if (nl.block(nl.net(n).driver).type == BlockType::kLut) ++comb;
      }
      pending[b] = comb;
      if (comb == 0) ready.push_back(b);
    }
  }
  std::vector<BlockId> topo;
  while (!ready.empty()) {
    const BlockId b = ready.back();
    ready.pop_back();
    topo.push_back(b);
    const Block& blk = nl.block(b);
    double arr = 0.0;
    for (NetId n : blk.inputs) {
      arr = std::max(arr, arrival[nl.net(n).driver] + net_delay(n));
    }
    arrival[b] = arr + 1.0;
    for (BlockId sk : nl.net(blk.output).sinks) {
      if (nl.block(sk).type == BlockType::kLut && pending[sk] > 0) {
        if (--pending[sk] == 0) ready.push_back(sk);
      }
    }
  }
  double d_max = 1.0;
  for (BlockId b = 0; b < nl.block_count(); ++b) {
    const Block& blk = nl.block(b);
    if (blk.type == BlockType::kLatch || blk.type == BlockType::kOutput) {
      for (NetId n : blk.inputs) {
        d_max = std::max(d_max, arrival[nl.net(n).driver] + net_delay(n));
      }
    }
  }
  // Backward required times over the reverse topological order.
  std::vector<double> required(nl.block_count(), d_max);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const BlockId b = *it;
    const Block& blk = nl.block(b);
    double req = d_max;
    for (BlockId sk : nl.net(blk.output).sinks) {
      const Block& sb = nl.block(sk);
      const double d = net_delay(blk.output);
      if (sb.type == BlockType::kLut) {
        req = std::min(req, required[sk] - 1.0 - d);
      } else {
        req = std::min(req, d_max - d);
      }
    }
    required[b] = req;
  }
  // Criticality per placed net from the tightest sink's slack.
  std::vector<double> crit(nets.size(), 0.0);
  for (std::size_t n = 0; n < nets.size(); ++n) {
    const NetId net_id = nets[n].net;
    const BlockId drv = nl.net(net_id).driver;
    const double arr = arrival[drv];
    double worst_req = d_max;
    for (BlockId sk : nl.net(net_id).sinks) {
      if (nl.block(sk).type == BlockType::kLut) {
        worst_req = std::min(worst_req, required[sk] - 1.0);
      }
    }
    const double slack = worst_req - arr - net_delay(net_id);
    crit[n] = criticality_from_slack(slack, d_max);
  }
  return crit;
}

Placement place(const Netlist& nl, const Packing& p, const ArchParams& arch,
                std::size_t nx, std::size_t ny, const PlaceOptions& opt) {
  Annealer an{p, arch, nx, ny, Rng(opt.seed), {}, {}, {}, {}, {}, 0.0,
              {}, {}, {}, {}};
  an.nets = extract_placed_nets(nl, p);
  an.run(opt, nl, p);

  Placement out;
  out.nx = nx;
  out.ny = ny;
  out.locs = std::move(an.locs);
  out.nets = std::move(an.nets);
  out.final_cost = an.cost;
  return out;
}

double placement_cost(const Placement& pl) {
  double cost = 0.0;
  for (const auto& n : pl.nets) {
    std::size_t x_lo = pl.locs[n.driver].x, x_hi = x_lo;
    std::size_t y_lo = pl.locs[n.driver].y, y_hi = y_lo;
    for (std::size_t s : n.sinks) {
      x_lo = std::min(x_lo, pl.locs[s].x);
      x_hi = std::max(x_hi, pl.locs[s].x);
      y_lo = std::min(y_lo, pl.locs[s].y);
      y_hi = std::max(y_hi, pl.locs[s].y);
    }
    cost += q_factor(n.sinks.size() + 1) *
            (static_cast<double>(x_hi - x_lo) + static_cast<double>(y_hi - y_lo));
  }
  return cost;
}

void check_placement(const Packing& p, const ArchParams& arch,
                     const Placement& pl) {
  if (pl.locs.size() != p.blocks.size()) {
    throw std::logic_error("check_placement: loc count mismatch");
  }
  std::unordered_set<std::size_t> used;
  for (std::size_t b = 0; b < p.blocks.size(); ++b) {
    const BlockLoc& l = pl.locs[b];
    const bool is_logic = p.blocks[b].type == PackedType::kLogic;
    const bool in_core = l.x >= 1 && l.x <= pl.nx && l.y >= 1 && l.y <= pl.ny;
    const bool border_x = (l.x == 0 || l.x == pl.nx + 1);
    const bool border_y = (l.y == 0 || l.y == pl.ny + 1);
    const bool on_border = border_x != border_y;
    if (is_logic) {
      if (!in_core) throw std::logic_error("logic block off-grid");
      if (l.sub != 0) throw std::logic_error("logic block sub-slot");
    } else {
      if (!on_border) throw std::logic_error("IO block not on border");
      if (l.sub >= arch.io_per_pad) throw std::logic_error("IO sub overflow");
    }
    const std::size_t key =
        (l.y * (pl.nx + 2) + l.x) * (arch.io_per_pad + 1) + l.sub;
    if (!used.insert(key).second) {
      throw std::logic_error("check_placement: overlapping blocks");
    }
  }
}

}  // namespace nemfpga
