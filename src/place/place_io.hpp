// VPR-style placement file I/O: lets a placement be saved, inspected, and
// reloaded (e.g. to re-route the same placement at several channel widths
// across tool invocations, or to import a placement from another tool).
//
// Format (after VPR's .place):
//
//   Array size: <nx> x <ny> logic blocks
//   #block   x   y   subblk
//   b0       3   4   0
//   ...
//
// Blocks are identified positionally (b<index> over the packed blocks).
#pragma once

#include <iosfwd>
#include <string>

#include "place/place.hpp"

namespace nemfpga {

/// Serialize block locations (nets/cost are not part of the file).
void write_placement(const Placement& pl, std::ostream& out);
std::string write_placement_string(const Placement& pl);
void write_placement_file(const Placement& pl, const std::string& path);

/// Parse a placement file; `expected_blocks` guards against mismatched
/// netlists. The returned Placement carries locations and grid size only —
/// call extract_placed_nets() and recompute cost as needed.
Placement read_placement(std::istream& in, std::size_t expected_blocks);
Placement read_placement_string(const std::string& text,
                                std::size_t expected_blocks);
Placement read_placement_file(const std::string& path,
                              std::size_t expected_blocks);

}  // namespace nemfpga
