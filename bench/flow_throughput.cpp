// Flow-throughput harness for the flow-as-a-service stack (ISSUE 9):
// one job mix — N same-architecture flows differing only in placement
// seed — measured three ways, and emitted as BENCH_serve.json (schema
// nemfpga-serve-bench-1, tools/bench_check.py family "serve"):
//
//   cold-seq    N sequential self-contained run_flow calls, no cache:
//               the pre-ISSUE-9 baseline, every job pays the full
//               RR/lookahead/delay-model build.
//   cold-batch  the same N jobs through JobScheduler(--threads) with a
//               fresh ArtifactCache: the first job on the fabric builds
//               each artifact (single-flight), the rest reuse it.
//   warm-batch  the same N jobs again on the now-warm cache: every
//               artifact request is a hit — the daemon steady state.
//
// The harness asserts per-job bit-identity across all three modes
// before writing anything (the cache and the scheduler may only change
// who pays the build cost, never a routed bit), then records per-mode
// walls, the deterministic cache counters (misses / evictions / reuses
// = hits + single-flight waits / lookahead_cached), and an artifact
// microbench: the wall of a cold make_flow_artifacts (the build) vs a
// warm one (the fetch) — the amortization ratio a warm daemon applies
// to every job's artifact cost, meaningful even on a single-core host
// where job-level parallelism cannot show through wall clock.
//
//   flow_throughput [--out FILE] [--jobs N] [--threads N]
//                   [--benchmark NAME | --synth-luts N] [--w N]
//                   [--timing 0|1] [--seed S] [--cache-mb N] [--smoke]
//
// Wall times are noisy and machine-bound; the counters and checksums
// are deterministic (single-flight makes the build count exact at any
// worker count). bench_check pins the latter and refuses wall
// comparisons across thread counts.
#include <sys/resource.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "netlist/mcnc.hpp"
#include "netlist/synth_gen.hpp"
#include "service/flow_artifacts.hpp"
#include "service/job_scheduler.hpp"

using namespace nemfpga;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t peak_rss_bytes() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;
}

// ---- strict flag parsing (route_perf's discipline: no silent atoi) ------

[[noreturn]] void flag_error(const char* flag, const char* tok) {
  std::fprintf(stderr, "flow_throughput: bad value for %s: '%s'\n", flag,
               tok);
  std::exit(2);
}

const char* flag_operand(const char* flag, int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "flow_throughput: missing value for %s\n", flag);
    std::exit(2);
  }
  return argv[++i];
}

std::size_t parse_size_flag(const char* flag, int argc, char** argv,
                            int& i) {
  const char* tok = flag_operand(flag, argc, argv, i);
  const std::size_t len = std::strlen(tok);
  if (len == 0 || len > 19) flag_error(flag, tok);
  std::size_t v = 0;
  for (std::size_t k = 0; k < len; ++k) {
    if (!std::isdigit(static_cast<unsigned char>(tok[k]))) {
      flag_error(flag, tok);
    }
    v = v * 10 + static_cast<std::size_t>(tok[k] - '0');
  }
  return v;
}

// -------------------------------------------------------------------------

/// One measured mode over the same job mix.
struct ModeReport {
  std::string name;
  std::size_t ok_jobs = 0;
  double wall_s = 0.0;
  double jobs_per_s = 0.0;
  // Deterministic cache counters for this mode (deltas; all zero in
  // cold-seq, which runs cacheless).
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_reuses = 0;  ///< hits + single-flight waits.
  std::uint64_t lookahead_cached = 0;  ///< Jobs whose table was a hit.
  double t_lookahead_build_s = 0.0;    ///< Sum of per-job build walls.
  /// FNV-1a over the per-job tree checksums in submission order — the
  /// mode's routing identity (must match the other modes').
  std::uint64_t batch_checksum = 0;
  std::vector<std::uint64_t> job_checksums;
};

std::uint64_t combine_checksums(const std::vector<std::uint64_t>& v) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t c : v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (c >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

struct Config {
  const char* out = "BENCH_serve.json";
  std::size_t jobs = 16;
  std::size_t threads = 8;
  std::string benchmark = "tseng";  ///< "" when synth_luts is set.
  std::size_t synth_luts = 0;
  std::size_t w = 64;
  bool timing = false;
  std::uint64_t seed0 = 1;
  std::size_t cache_mb = 4096;
};

Netlist make_netlist(const Config& cfg) {
  if (cfg.synth_luts > 0) {
    SynthSpec spec;
    spec.n_luts = cfg.synth_luts;
    spec.n_inputs = 48;
    spec.n_outputs = 48;
    spec.name = "synth-" + std::to_string(cfg.synth_luts);
    return generate_netlist(spec);
  }
  return generate_benchmark(cfg.benchmark);
}

FlowOptions job_options(const Config& cfg, std::size_t job) {
  FlowOptions opt;
  opt.arch.W = cfg.w;
  opt.place.seed = cfg.seed0 + job;
  opt.route.timing_driven = cfg.timing;
  return opt;
}

ModeReport run_cold_seq(const Config& cfg, const Netlist& nl) {
  ModeReport rep;
  rep.name = "cold-seq";
  const double t0 = now_s();
  for (std::size_t j = 0; j < cfg.jobs; ++j) {
    const FlowResult r = run_flow(nl, job_options(cfg, j));
    ++rep.ok_jobs;
    rep.job_checksums.push_back(routing_tree_checksum(r.routing));
    rep.t_lookahead_build_s += r.routing.counters.t_lookahead_build_s;
    rep.lookahead_cached += r.routing.counters.lookahead_cached;
  }
  rep.wall_s = now_s() - t0;
  rep.jobs_per_s = static_cast<double>(cfg.jobs) / rep.wall_s;
  rep.batch_checksum = combine_checksums(rep.job_checksums);
  return rep;
}

ModeReport run_batch(const Config& cfg, const Netlist& nl,
                     const char* name, ArtifactCache& cache,
                     JobScheduler& sched) {
  ModeReport rep;
  rep.name = name;
  const ArtifactCache::Stats before = cache.stats();
  const double t0 = now_s();
  std::vector<std::future<FlowJobResult>> futs;
  futs.reserve(cfg.jobs);
  for (std::size_t j = 0; j < cfg.jobs; ++j) {
    FlowJob job;
    job.name = rep.name + "-" + std::to_string(j);
    job.netlist = nl;
    job.opt = job_options(cfg, j);
    futs.push_back(sched.submit(std::move(job)));
  }
  for (auto& f : futs) {
    const FlowJobResult r = f.get();
    if (!r.ok) {
      std::fprintf(stderr, "flow_throughput: %s failed: %s\n",
                   r.name.c_str(), r.error.c_str());
      std::exit(1);
    }
    ++rep.ok_jobs;
    rep.job_checksums.push_back(r.tree_checksum);
    rep.t_lookahead_build_s += r.counters.t_lookahead_build_s;
    rep.lookahead_cached += r.counters.lookahead_cached;
  }
  rep.wall_s = now_s() - t0;
  rep.jobs_per_s = static_cast<double>(cfg.jobs) / rep.wall_s;
  rep.batch_checksum = combine_checksums(rep.job_checksums);
  const ArtifactCache::Stats after = cache.stats();
  rep.cache_misses = after.misses - before.misses;
  rep.cache_evictions = after.evictions - before.evictions;
  rep.cache_reuses = (after.hits + after.single_flight_waits) -
                     (before.hits + before.single_flight_waits);
  return rep;
}

void write_json(const Config& cfg, const std::vector<ModeReport>& modes,
                double artifact_build_s, double artifact_fetch_s,
                std::size_t resident_bytes, double total_wall_s) {
  FILE* f = std::fopen(cfg.out, "w");
  if (!f) {
    std::fprintf(stderr, "flow_throughput: cannot open %s\n", cfg.out);
    std::exit(1);
  }
  const std::string circuit =
      cfg.synth_luts > 0 ? "synth-" + std::to_string(cfg.synth_luts)
                         : cfg.benchmark;
  std::fprintf(f, "{\n  \"schema\": \"nemfpga-serve-bench-1\",\n");
  // The job-mix tuple bench_check pins: the circuit, the job count, the
  // width, the timing mode and the seed base select which flows run.
  // threads does NOT join it — the scheduler is required to be
  // bit-identical at any worker count, and the cross-thread diff audits
  // exactly that; wall comparisons are refused across thread counts
  // instead.
  std::fprintf(f, "  \"threads\": %zu,\n", cfg.threads);
  std::fprintf(f, "  \"benchmark\": \"%s\",\n", circuit.c_str());
  std::fprintf(f, "  \"jobs\": %zu,\n", cfg.jobs);
  std::fprintf(f, "  \"w\": %zu,\n", cfg.w);
  std::fprintf(f, "  \"timing\": %s,\n", cfg.timing ? "true" : "false");
  std::fprintf(f, "  \"seed0\": %llu,\n",
               static_cast<unsigned long long>(cfg.seed0));
  std::fprintf(f, "  \"cache_mb\": %zu,\n", cfg.cache_mb);
  std::fprintf(f, "  \"total_wall_s\": %.6f,\n", total_wall_s);
  std::fprintf(f, "  \"peak_rss_bytes\": %llu,\n",
               static_cast<unsigned long long>(peak_rss_bytes()));
  // The artifact microbench: what one job's pre-route build costs cold
  // vs out of the warm cache. Wall-clock samples (noisy), but the ratio
  // is the amortization headline and survives single-core hosts.
  std::fprintf(f, "  \"artifact_build_s\": %.6f,\n", artifact_build_s);
  std::fprintf(f, "  \"artifact_fetch_s\": %.9f,\n", artifact_fetch_s);
  std::fprintf(f, "  \"artifact_amortization\": %.1f,\n",
               artifact_fetch_s > 0.0 ? artifact_build_s / artifact_fetch_s
                                      : 0.0);
  std::fprintf(f, "  \"cache_resident_bytes\": %zu,\n", resident_bytes);
  const double cold_seq = modes.front().wall_s;
  const double warm = modes.back().wall_s;
  std::fprintf(f, "  \"speedup_warm_vs_cold_seq\": %.2f,\n",
               warm > 0.0 ? cold_seq / warm : 0.0);
  std::fprintf(f, "  \"circuits\": [\n");
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const ModeReport& m = modes[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", m.name.c_str());
    std::fprintf(f, "      \"ok_jobs\": %zu,\n", m.ok_jobs);
    std::fprintf(f, "      \"batch_checksum\": \"%016llx\",\n",
                 static_cast<unsigned long long>(m.batch_checksum));
    std::fprintf(f, "      \"cache_misses\": %llu,\n",
                 static_cast<unsigned long long>(m.cache_misses));
    std::fprintf(f, "      \"cache_evictions\": %llu,\n",
                 static_cast<unsigned long long>(m.cache_evictions));
    std::fprintf(f, "      \"cache_reuses\": %llu,\n",
                 static_cast<unsigned long long>(m.cache_reuses));
    std::fprintf(f, "      \"lookahead_cached\": %llu,\n",
                 static_cast<unsigned long long>(m.lookahead_cached));
    std::fprintf(f, "      \"t_lookahead_build_s\": %.6f,\n",
                 m.t_lookahead_build_s);
    std::fprintf(f, "      \"wall_s\": %.6f,\n", m.wall_s);
    std::fprintf(f, "      \"jobs_per_s\": %.3f\n", m.jobs_per_s);
    std::fprintf(f, "    }%s\n", i + 1 < modes.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out")) {
      cfg.out = flag_operand("--out", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--jobs")) {
      cfg.jobs = parse_size_flag("--jobs", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--threads")) {
      cfg.threads = parse_size_flag("--threads", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--benchmark")) {
      cfg.benchmark = flag_operand("--benchmark", argc, argv, i);
      cfg.synth_luts = 0;
    } else if (!std::strcmp(argv[i], "--synth-luts")) {
      cfg.synth_luts = parse_size_flag("--synth-luts", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--w")) {
      cfg.w = parse_size_flag("--w", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--timing")) {
      const char* tok = flag_operand("--timing", argc, argv, i);
      if (!std::strcmp(tok, "0")) {
        cfg.timing = false;
      } else if (!std::strcmp(tok, "1")) {
        cfg.timing = true;
      } else {
        flag_error("--timing", tok);
      }
    } else if (!std::strcmp(argv[i], "--seed")) {
      cfg.seed0 = parse_size_flag("--seed", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--cache-mb")) {
      cfg.cache_mb = parse_size_flag("--cache-mb", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--smoke")) {
      smoke = true;
    } else {
      std::fprintf(
          stderr,
          "usage: flow_throughput [--out FILE] [--jobs N] [--threads N] "
          "[--benchmark NAME | --synth-luts N] [--w N] [--timing 0|1] "
          "[--seed S] [--cache-mb N] [--smoke]\n");
      return 2;
    }
  }
  if (smoke) {
    // Small enough for tier-1 ctest: 4 jobs of a ~300-LUT synthetic.
    cfg.jobs = 4;
    cfg.threads = 2;
    cfg.synth_luts = 300;
    cfg.w = 48;
  }
  if (cfg.jobs == 0) flag_error("--jobs", "0");

  const Netlist nl = make_netlist(cfg);
  std::printf(
      "flow_throughput — %zu jobs of %s at W=%zu (%s), %zu workers\n",
      cfg.jobs,
      cfg.synth_luts > 0 ? ("synth-" + std::to_string(cfg.synth_luts)).c_str()
                         : cfg.benchmark.c_str(),
      cfg.w, cfg.timing ? "timing" : "congestion", cfg.threads);

  const double t_all = now_s();
  std::vector<ModeReport> modes;
  modes.push_back(run_cold_seq(cfg, nl));
  std::printf("  %-10s %6.2f s  %6.2f jobs/s\n", "cold-seq",
              modes.back().wall_s, modes.back().jobs_per_s);

  ArtifactCache cache(cfg.cache_mb << 20);
  {
    JobScheduler sched(cache, cfg.threads);
    modes.push_back(run_batch(cfg, nl, "cold-batch", cache, sched));
    std::printf("  %-10s %6.2f s  %6.2f jobs/s  (%llu builds, %llu reuses)\n",
                "cold-batch", modes.back().wall_s, modes.back().jobs_per_s,
                static_cast<unsigned long long>(modes.back().cache_misses),
                static_cast<unsigned long long>(modes.back().cache_reuses));
    modes.push_back(run_batch(cfg, nl, "warm-batch", cache, sched));
    std::printf("  %-10s %6.2f s  %6.2f jobs/s  (%llu builds, %llu reuses)\n",
                "warm-batch", modes.back().wall_s, modes.back().jobs_per_s,
                static_cast<unsigned long long>(modes.back().cache_misses),
                static_cast<unsigned long long>(modes.back().cache_reuses));
  }

  // Bit-identity gate: every mode must have routed every job to the
  // same trees. A mismatch is a correctness bug — refuse to emit a
  // benchmark file that would enshrine it.
  for (std::size_t m = 1; m < modes.size(); ++m) {
    for (std::size_t j = 0; j < cfg.jobs; ++j) {
      if (modes[m].job_checksums[j] != modes[0].job_checksums[j]) {
        std::fprintf(stderr,
                     "flow_throughput: job %zu checksum diverged in %s "
                     "(%016llx vs cold-seq %016llx)\n",
                     j, modes[m].name.c_str(),
                     static_cast<unsigned long long>(
                         modes[m].job_checksums[j]),
                     static_cast<unsigned long long>(
                         modes[0].job_checksums[j]));
        return 1;
      }
    }
  }

  // Artifact microbench: one job's pre-route build, cold vs warm. The
  // warm fetch goes through the same get_or_build path a warm daemon
  // job takes.
  const FlowOptions aopt = job_options(cfg, 0);
  Packing pack = pack_netlist(nl, aopt.arch);
  std::size_t nx = 1;
  while (nx * nx < pack.clusters.size()) ++nx;
  ArtifactCache acache(cfg.cache_mb << 20);
  const double tb = now_s();
  (void)make_flow_artifacts(&acache, aopt.arch, nx, nx, aopt.route,
                            aopt.timing_backend);
  const double artifact_build_s = now_s() - tb;
  const double tf = now_s();
  (void)make_flow_artifacts(&acache, aopt.arch, nx, nx, aopt.route,
                            aopt.timing_backend);
  const double artifact_fetch_s = now_s() - tf;
  std::printf(
      "  artifacts: build %.3f s, warm fetch %.6f s (%.0fx amortized)\n",
      artifact_build_s, artifact_fetch_s,
      artifact_fetch_s > 0.0 ? artifact_build_s / artifact_fetch_s : 0.0);
  std::printf("  warm-batch vs cold-seq: %.2fx\n",
              modes.back().wall_s > 0.0
                  ? modes.front().wall_s / modes.back().wall_s
                  : 0.0);

  write_json(cfg, modes, artifact_build_s, artifact_fetch_s,
             cache.stats().resident_bytes, now_s() - t_all);
  std::printf("flow_throughput: wrote %s\n", cfg.out);
  return 0;
}
