// Router performance harness: routes seed circuits at a fixed channel
// width and through the full find_min_channel_width search, and emits
// BENCH_route.json (wall times, router work counters, Wmin) so every PR
// leaves a perf trajectory to regress against (tools/bench_check.py
// diffs two such files).
//
//   route_perf [--out FILE] [--circuits a,b,c] [--smoke]
//              [--threads N] [--astar F] [--timing] [--crit-exp E]
//
// --smoke runs only the smallest seed circuit (CTest target bench_smoke
// exercises the harness this way). --threads installs its own pool for
// the whole run (default: the ambient NF_THREADS pool). --astar sets
// RouteOptions::astar_factor; 0 selects the legacy profile (Manhattan
// heuristic, serial nets) that reproduces the pre-lookahead router
// bit-for-bit. --timing routes the fixed-width pass timing-driven (an
// incremental-STA hook over the CMOS baseline view; the Wmin search
// stays congestion-only by construction) and records the post-route
// critical path. Wall times vary run to run; Wmin, iteration, counter
// and critical-path fields are bit-deterministic at any thread count.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "netlist/mcnc.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "timing/sta.hpp"
#include "timing/variant.hpp"
#include "util/thread_pool.hpp"
#include "verify/check.hpp"

using namespace nemfpga;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t routing_checksum(const RoutingResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& t : r.trees) {
    mix(t.source);
    mix(t.edges.size());
    for (const auto& [from, to] : t.edges) {
      mix((static_cast<std::uint64_t>(from) << 32) | to);
    }
    for (RrNodeId s : t.sinks) mix(s);
  }
  return h;
}

struct CircuitReport {
  std::string name;
  std::size_t luts = 0;
  std::size_t nets = 0;
  std::size_t w_min = 0;
  double wmin_wall_s = 0.0;
  std::size_t w_fixed = 0;
  double route_wall_s = 0.0;
  std::size_t iterations = 0;
  std::uint64_t checksum = 0;
  RoutingResult fixed;  ///< counters live here
};

/// Router configuration under test; set once from the command line.
RouteOptions g_route_opt;

CircuitReport run_circuit(const std::string& name) {
  CircuitReport rep;
  rep.name = name;
  rep.luts = benchmark_info(name).luts;

  const Netlist nl = generate_benchmark(name);
  ArchParams arch;
  arch.W = 64;  // provisional; only pack/place look at it
  const Packing pk = pack_netlist(nl, arch);
  const auto [nx, ny] =
      grid_size_for(arch, pk.clusters.size(), pk.io_block_count());
  PlaceOptions popt;
  popt.inner_num = 0.3;  // placement quality is not under test here
  const Placement pl = place(nl, pk, arch, nx, ny, popt);
  rep.nets = pl.nets.size();

  double t0 = now_s();
  const ChannelWidthResult cw = find_min_channel_width(arch, pl, 48,
                                                       g_route_opt);
  rep.wmin_wall_s = now_s() - t0;
  rep.w_min = cw.w_min;
  rep.w_fixed = cw.w_low_stress;

  ArchParams fixed_arch = arch;
  fixed_arch.W = rep.w_fixed;
  const RrGraph g(fixed_arch, nx, ny);
  // Timing-driven runs need a fresh hook per route_all; the Wmin search
  // above stays congestion-only (width probes force timing off).
  std::unique_ptr<RouterTimingHook> hook;
  RouteOptions ropt = g_route_opt;
  if (ropt.timing_driven) {
    const ElectricalView view =
        make_view(fixed_arch, FpgaVariant::kCmosBaseline);
    hook = make_incremental_sta(nl, pk, pl, g, view, ropt.criticality_exp,
                                ropt.max_criticality);
    ropt.timing_hook = hook.get();
  }
  t0 = now_s();
  rep.fixed = route_all(g, pl, ropt);
  rep.route_wall_s = now_s() - t0;
  if (!rep.fixed.success) {
    std::fprintf(stderr, "route_perf: %s unroutable at low-stress W=%zu\n",
                 name.c_str(), rep.w_fixed);
    std::exit(1);
  }
  check_routing(g, pl, rep.fixed);
  rep.iterations = rep.fixed.iterations;
  rep.checksum = routing_checksum(rep.fixed);
  return rep;
}

void write_json(const std::vector<CircuitReport>& reps, const char* path) {
  FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "route_perf: cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"nemfpga-route-bench-3\",\n");
  std::fprintf(f, "  \"threads\": %zu,\n",
               ThreadPool::current().thread_count());
  std::fprintf(f, "  \"astar_factor\": %.3f,\n", g_route_opt.astar_factor);
  std::fprintf(f, "  \"net_parallel\": %s,\n",
               g_route_opt.net_parallel ? "true" : "false");
  std::fprintf(f, "  \"timing_driven\": %s,\n",
               g_route_opt.timing_driven ? "true" : "false");
  std::fprintf(f, "  \"crit_exp\": %.3f,\n", g_route_opt.criticality_exp);
  // Recorded so bench_check can waive the wall-time budget when one run
  // paid for invariant checking and the other did not; the correctness
  // fields and work counters stay pinned either way.
  std::fprintf(f, "  \"invariants_checked\": %s,\n",
               verify::checks_enabled() ? "true" : "false");
  double total = 0.0;
  for (const auto& r : reps) total += r.wmin_wall_s + r.route_wall_s;
  std::fprintf(f, "  \"total_wall_s\": %.6f,\n", total);
  std::fprintf(f, "  \"circuits\": [\n");
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const auto& r = reps[i];
    const auto& c = r.fixed.counters;
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(f, "      \"luts\": %zu,\n", r.luts);
    std::fprintf(f, "      \"nets\": %zu,\n", r.nets);
    std::fprintf(f, "      \"wmin\": %zu,\n", r.w_min);
    std::fprintf(f, "      \"wmin_wall_s\": %.6f,\n", r.wmin_wall_s);
    std::fprintf(f, "      \"fixed_w\": %zu,\n", r.w_fixed);
    std::fprintf(f, "      \"route_wall_s\": %.6f,\n", r.route_wall_s);
    std::fprintf(f, "      \"iterations\": %zu,\n", r.iterations);
    // 0 when congestion-only; hexfloat-precise via %.17g so a diff of
    // two timing runs compares the critical path bitwise.
    std::fprintf(f, "      \"critical_path_s\": %.17g,\n",
                 r.fixed.critical_path_s);
    std::fprintf(f, "      \"tree_checksum\": \"%016llx\",\n",
                 static_cast<unsigned long long>(r.checksum));
    std::fprintf(f, "      \"counters\": {\n");
    std::fprintf(f, "        \"heap_pushes\": %llu,\n",
                 static_cast<unsigned long long>(c.heap_pushes));
    std::fprintf(f, "        \"heap_pops\": %llu,\n",
                 static_cast<unsigned long long>(c.heap_pops));
    std::fprintf(f, "        \"nodes_expanded\": %llu,\n",
                 static_cast<unsigned long long>(c.nodes_expanded));
    std::fprintf(f, "        \"sink_searches\": %llu,\n",
                 static_cast<unsigned long long>(c.sink_searches));
    std::fprintf(f, "        \"nets_routed\": %llu,\n",
                 static_cast<unsigned long long>(c.nets_routed));
    std::fprintf(f, "        \"nets_rerouted\": %llu,\n",
                 static_cast<unsigned long long>(c.nets_rerouted));
    std::fprintf(f, "        \"scratch_grows\": %llu,\n",
                 static_cast<unsigned long long>(c.scratch_grows));
    std::fprintf(f, "        \"lookahead_hits\": %llu,\n",
                 static_cast<unsigned long long>(c.lookahead_hits));
    std::fprintf(f, "        \"batches\": %llu,\n",
                 static_cast<unsigned long long>(c.batches));
    std::fprintf(f, "        \"conflict_replays\": %llu,\n",
                 static_cast<unsigned long long>(c.conflict_replays));
    std::fprintf(f, "        \"sta_net_evals\": %llu,\n",
                 static_cast<unsigned long long>(c.sta_net_evals));
    std::fprintf(f, "        \"sta_block_updates\": %llu,\n",
                 static_cast<unsigned long long>(c.sta_block_updates));
    std::fprintf(f, "        \"t_search_s\": %.6f,\n", c.t_search_s);
    std::fprintf(f, "        \"t_bookkeep_s\": %.6f,\n", c.t_bookkeep_s);
    std::fprintf(f, "        \"t_lookahead_build_s\": %.6f\n",
                 c.t_lookahead_build_s);
    std::fprintf(f, "      }\n");
    std::fprintf(f, "    }%s\n", i + 1 < reps.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = "BENCH_route.json";
  std::vector<std::string> circuits = {"tseng", "alu4", "pdc"};
  std::size_t threads = 0;  // 0 = keep the ambient NF_THREADS pool
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out = argv[++i];
    } else if (!std::strcmp(argv[i], "--smoke")) {
      circuits = {"tseng"};
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--astar") && i + 1 < argc) {
      g_route_opt.astar_factor = std::atof(argv[++i]);
      // astar 0 means "the pre-lookahead router", which was serial.
      if (g_route_opt.astar_factor == 0.0) g_route_opt.net_parallel = false;
    } else if (!std::strcmp(argv[i], "--par") && i + 1 < argc) {
      g_route_opt.net_parallel = std::atoi(argv[++i]) != 0;
    } else if (!std::strcmp(argv[i], "--timing")) {
      g_route_opt.timing_driven = true;
    } else if (!std::strcmp(argv[i], "--crit-exp") && i + 1 < argc) {
      g_route_opt.criticality_exp = std::atof(argv[++i]);
    } else if (!std::strcmp(argv[i], "--verify-la")) {
      // Shadow every directed search with a zero-heuristic Dijkstra on
      // the same cost state: proves admissibility (suboptimal must stay
      // 0 at astar <= 1) and reports the heuristic's pruning ratio.
      g_route_opt.verify_lookahead = true;
    } else if (!std::strcmp(argv[i], "--circuits") && i + 1 < argc) {
      circuits.clear();
      std::string s = argv[++i];
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t c = s.find(',', pos);
        circuits.push_back(s.substr(pos, c - pos));
        pos = c == std::string::npos ? c : c + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: route_perf [--out FILE] [--circuits a,b,c] "
                   "[--smoke] [--threads N] [--astar F] [--par 0|1] "
                   "[--timing] [--crit-exp E] [--verify-la]\n");
      return 2;
    }
  }

  std::unique_ptr<ThreadPool> own_pool;
  std::unique_ptr<ThreadPool::ScopedUse> own_use;
  if (threads > 0) {
    own_pool = std::make_unique<ThreadPool>(threads);
    own_use = std::make_unique<ThreadPool::ScopedUse>(*own_pool);
  }

  std::printf(
      "route_perf — PathFinder hot-path benchmark (%zu threads, "
      "astar=%.2f, net_parallel=%d, timing=%d)\n\n",
      ThreadPool::current().thread_count(), g_route_opt.astar_factor,
      static_cast<int>(g_route_opt.net_parallel),
      static_cast<int>(g_route_opt.timing_driven));
  std::vector<CircuitReport> reps;
  for (const auto& name : circuits) {
    reps.push_back(run_circuit(name));
    const auto& r = reps.back();
    const auto& c = r.fixed.counters;
    std::printf(
        "%-8s %5zu LUTs  Wmin=%-3zu (%6.2f s)  route@W=%-3zu %6.2f s  "
        "%zu iters  checksum %016llx\n",
        r.name.c_str(), r.luts, r.w_min, r.wmin_wall_s, r.w_fixed,
        r.route_wall_s, r.iterations,
        static_cast<unsigned long long>(r.checksum));
    if (g_route_opt.timing_driven) {
      std::printf(
          "         critical_path=%.3f ns  sta_net_evals=%llu "
          "sta_block_updates=%llu\n",
          r.fixed.critical_path_s * 1e9,
          static_cast<unsigned long long>(c.sta_net_evals),
          static_cast<unsigned long long>(c.sta_block_updates));
    }
    std::printf(
        "         expanded=%llu pushes=%llu lookahead_hits=%llu "
        "batches=%llu replays=%llu la_build=%.3fs\n",
        static_cast<unsigned long long>(c.nodes_expanded),
        static_cast<unsigned long long>(c.heap_pushes),
        static_cast<unsigned long long>(c.lookahead_hits),
        static_cast<unsigned long long>(c.batches),
        static_cast<unsigned long long>(c.conflict_replays),
        c.t_lookahead_build_s);
    if (g_route_opt.verify_lookahead && c.verify_astar_expanded > 0) {
      std::printf(
          "         verify-la: dijkstra=%llu astar=%llu (%.2fx fewer) "
          "suboptimal=%llu\n",
          static_cast<unsigned long long>(c.verify_dijkstra_expanded),
          static_cast<unsigned long long>(c.verify_astar_expanded),
          static_cast<double>(c.verify_dijkstra_expanded) /
              static_cast<double>(c.verify_astar_expanded),
          static_cast<unsigned long long>(c.lookahead_suboptimal));
    }
  }
  write_json(reps, out);
  std::printf("\nwrote %s\n", out);
  return 0;
}
