// Router performance harness: routes seed circuits at a fixed channel
// width and through the full find_min_channel_width search, and emits
// BENCH_route.json (wall times, router work counters, Wmin, RR-graph
// memory) so every PR leaves a perf trajectory to regress against
// (tools/bench_check.py diffs two such files).
//
//   route_perf [--out FILE] [--circuits a,b,c] [--smoke] [--scale]
//              [--threads N] [--astar F] [--par 0|1] [--timing]
//              [--crit-exp E] [--backend explicit|implicit]
//              [--partition 0|1] [--partition-size N] [--max-w N]
//              [--verify-la]
//
// --smoke runs only the smallest seed circuit (CTest target bench_smoke
// exercises the harness this way). --scale replaces the MCNC seed list
// with three synthetic circuits of increasing size (about 10-, 16- and
// 24-tile grids) — the memory-scaling experiment of EXPERIMENTS.md: run
// it once per --backend and compare rr_bytes_per_node at fixed Wmin and
// tree checksums (both must be backend-invariant). --threads installs
// its own pool for the whole run (default: the ambient NF_THREADS pool).
// --astar sets RouteOptions::astar_factor; 0 selects the legacy profile
// (Manhattan heuristic, serial nets) that reproduces the pre-lookahead
// router bit-for-bit. --timing routes the fixed-width pass timing-driven
// (an incremental-STA hook over the CMOS baseline view; the Wmin search
// stays congestion-only by construction) and records the post-route
// critical path. --backend selects the RR representation (stored CSR vs
// coordinate-computed); --partition enables the region-partitioned net
// scheduler and --partition-size overrides its region edge length.
// --max-w caps the Wmin grow phase: a circuit that cannot route below
// the cap is reported as "infeasible" in the JSON instead of aborting
// the run. Wall times and peak RSS vary run to run; Wmin, iteration,
// counter, checksum and critical-path fields are bit-deterministic at
// any thread count and across backends.
#include <sys/resource.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "netlist/mcnc.hpp"
#include "netlist/synth_gen.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "timing/sta.hpp"
#include "timing/variant.hpp"
#include "util/thread_pool.hpp"
#include "verify/check.hpp"

using namespace nemfpga;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Peak resident set of this process so far, in bytes (Linux reports
/// ru_maxrss in KiB). Dominated by the largest RR graph the run built,
/// which is exactly what the implicit backend is supposed to shrink.
std::uint64_t peak_rss_bytes() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;
}

// ---- strict flag parsing ------------------------------------------------
// Modeled on place_io.cpp's parse_size: no atoi/atof, whose silent-zero
// failure mode once turned `--threads x` into a 0-thread "request" that
// quietly kept the ambient pool. Every malformed operand names the flag
// it belongs to and exits 2 (the usage-error code).

[[noreturn]] void flag_error(const char* flag, const char* tok) {
  std::fprintf(stderr, "route_perf: bad value for %s: '%s'\n", flag, tok);
  std::exit(2);
}

const char* flag_operand(const char* flag, int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "route_perf: missing value for %s\n", flag);
    std::exit(2);
  }
  return argv[++i];
}

std::size_t parse_size_flag(const char* flag, int argc, char** argv,
                            int& i) {
  const char* tok = flag_operand(flag, argc, argv, i);
  const std::size_t len = std::strlen(tok);
  if (len == 0 || len > 19) flag_error(flag, tok);
  std::size_t v = 0;
  for (std::size_t k = 0; k < len; ++k) {
    if (!std::isdigit(static_cast<unsigned char>(tok[k]))) {
      flag_error(flag, tok);
    }
    v = v * 10 + static_cast<std::size_t>(tok[k] - '0');
  }
  return v;
}

double parse_double_flag(const char* flag, int argc, char** argv, int& i) {
  const char* tok = flag_operand(flag, argc, argv, i);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok, &end);
  if (end == tok || *end != '\0' || errno == ERANGE || !std::isfinite(v)) {
    flag_error(flag, tok);
  }
  return v;
}

bool parse_bool_flag(const char* flag, int argc, char** argv, int& i) {
  const char* tok = flag_operand(flag, argc, argv, i);
  if (!std::strcmp(tok, "0")) return false;
  if (!std::strcmp(tok, "1")) return true;
  flag_error(flag, tok);
}

RrBackend parse_backend_flag(const char* flag, int argc, char** argv,
                             int& i) {
  const char* tok = flag_operand(flag, argc, argv, i);
  if (!std::strcmp(tok, "explicit")) return RrBackend::kExplicit;
  if (!std::strcmp(tok, "implicit")) return RrBackend::kImplicit;
  flag_error(flag, tok);
}

// -------------------------------------------------------------------------

std::uint64_t routing_checksum(const RoutingResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& t : r.trees) {
    mix(t.source);
    mix(t.edges.size());
    for (const auto& [from, to] : t.edges) {
      mix((static_cast<std::uint64_t>(from) << 32) | to);
    }
    for (RrNodeId s : t.sinks) mix(s);
  }
  return h;
}

struct CircuitReport {
  std::string name;
  std::size_t luts = 0;
  std::size_t nets = 0;
  std::size_t w_min = 0;
  double wmin_wall_s = 0.0;
  std::size_t w_fixed = 0;
  double route_wall_s = 0.0;
  std::size_t iterations = 0;
  std::uint64_t checksum = 0;
  /// The grow phase hit RouteOptions::max_channel_width (= w_cap here)
  /// without routing: no fixed-width pass ran, routing fields are 0.
  bool infeasible = false;
  std::size_t w_cap = 0;
  /// Resident size of the fixed-width RR representation actually routed
  /// over (explicit: node records + CSR + site/cover tables; implicit:
  /// prefix/tap tables only) — the tentpole memory claim, per node.
  std::size_t rr_nodes = 0;
  std::size_t rr_bytes = 0;
  RoutingResult fixed;  ///< counters live here
};

/// Router configuration under test; set once from the command line.
RouteOptions g_route_opt;

CircuitReport run_circuit(const std::string& name, const Netlist& nl,
                          std::size_t luts) {
  CircuitReport rep;
  rep.name = name;
  rep.luts = luts;

  ArchParams arch;
  arch.W = 64;  // provisional; only pack/place look at it
  const Packing pk = pack_netlist(nl, arch);
  const auto [nx, ny] =
      grid_size_for(arch, pk.clusters.size(), pk.io_block_count());
  PlaceOptions popt;
  popt.inner_num = 0.3;  // placement quality is not under test here
  const Placement pl = place(nl, pk, arch, nx, ny, popt);
  rep.nets = pl.nets.size();

  double t0 = now_s();
  const ChannelWidthResult cw = find_min_channel_width(arch, pl, 48,
                                                       g_route_opt);
  rep.wmin_wall_s = now_s() - t0;
  if (!cw.feasible) {
    rep.infeasible = true;
    rep.w_cap = cw.w_cap;
    return rep;
  }
  rep.w_min = cw.w_min;
  rep.w_fixed = cw.w_low_stress;

  ArchParams fixed_arch = arch;
  fixed_arch.W = rep.w_fixed;
  std::unique_ptr<RrGraph> eg;
  std::unique_ptr<ImplicitRrGraph> ig;
  if (g_route_opt.rr_backend == RrBackend::kImplicit) {
    ig = std::make_unique<ImplicitRrGraph>(fixed_arch, nx, ny);
  } else {
    eg = std::make_unique<RrGraph>(fixed_arch, nx, ny);
  }
  const RrGraphView g = ig ? RrGraphView(*ig) : RrGraphView(*eg);
  rep.rr_nodes = g.node_count();
  rep.rr_bytes = g.memory_bytes();
  // Timing-driven runs need a fresh hook per route_all; the Wmin search
  // above stays congestion-only (width probes force timing off).
  std::unique_ptr<RouterTimingHook> hook;
  RouteOptions ropt = g_route_opt;
  if (ropt.timing_driven) {
    const ElectricalView view =
        make_view(fixed_arch, FpgaVariant::kCmosBaseline);
    hook = make_incremental_sta(nl, pk, pl, g, view, ropt.criticality_exp,
                                ropt.max_criticality);
    ropt.timing_hook = hook.get();
  }
  t0 = now_s();
  rep.fixed = route_all(g, pl, ropt);
  rep.route_wall_s = now_s() - t0;
  if (!rep.fixed.success) {
    std::fprintf(stderr, "route_perf: %s unroutable at low-stress W=%zu\n",
                 name.c_str(), rep.w_fixed);
    std::exit(1);
  }
  check_routing(g, pl, rep.fixed);
  rep.iterations = rep.fixed.iterations;
  rep.checksum = routing_checksum(rep.fixed);
  return rep;
}

void write_json(const std::vector<CircuitReport>& reps, const char* path) {
  FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "route_perf: cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"nemfpga-route-bench-4\",\n");
  std::fprintf(f, "  \"threads\": %zu,\n",
               ThreadPool::current().thread_count());
  std::fprintf(f, "  \"astar_factor\": %.3f,\n", g_route_opt.astar_factor);
  std::fprintf(f, "  \"net_parallel\": %s,\n",
               g_route_opt.net_parallel ? "true" : "false");
  std::fprintf(f, "  \"timing_driven\": %s,\n",
               g_route_opt.timing_driven ? "true" : "false");
  std::fprintf(f, "  \"crit_exp\": %.3f,\n", g_route_opt.criticality_exp);
  // Backend and scheduler knobs: the partition knobs change the routing
  // (deterministically), so they join the config tuple bench_check pins;
  // rr_backend does NOT — both backends are bit-identical by design, and
  // cross-backend diffs are exactly how that claim is audited. Wall-time
  // budgets are still only applied between same-backend runs.
  std::fprintf(f, "  \"rr_backend\": \"%s\",\n",
               g_route_opt.rr_backend == RrBackend::kImplicit ? "implicit"
                                                              : "explicit");
  std::fprintf(f, "  \"partition_parallel\": %s,\n",
               g_route_opt.partition_parallel ? "true" : "false");
  std::fprintf(f, "  \"partition_size\": %zu,\n",
               g_route_opt.partition_size);
  // Recorded so bench_check can waive the wall-time budget when one run
  // paid for invariant checking and the other did not; the correctness
  // fields and work counters stay pinned either way.
  std::fprintf(f, "  \"invariants_checked\": %s,\n",
               verify::checks_enabled() ? "true" : "false");
  double total = 0.0;
  for (const auto& r : reps) total += r.wmin_wall_s + r.route_wall_s;
  std::fprintf(f, "  \"total_wall_s\": %.6f,\n", total);
  std::fprintf(f, "  \"peak_rss_bytes\": %llu,\n",
               static_cast<unsigned long long>(peak_rss_bytes()));
  std::fprintf(f, "  \"circuits\": [\n");
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const auto& r = reps[i];
    const auto& c = r.fixed.counters;
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(f, "      \"luts\": %zu,\n", r.luts);
    std::fprintf(f, "      \"nets\": %zu,\n", r.nets);
    std::fprintf(f, "      \"infeasible\": %s,\n",
                 r.infeasible ? "true" : "false");
    if (r.infeasible) {
      std::fprintf(f, "      \"w_cap\": %zu,\n", r.w_cap);
    }
    std::fprintf(f, "      \"wmin\": %zu,\n", r.w_min);
    std::fprintf(f, "      \"wmin_wall_s\": %.6f,\n", r.wmin_wall_s);
    std::fprintf(f, "      \"fixed_w\": %zu,\n", r.w_fixed);
    std::fprintf(f, "      \"route_wall_s\": %.6f,\n", r.route_wall_s);
    std::fprintf(f, "      \"iterations\": %zu,\n", r.iterations);
    std::fprintf(f, "      \"rr_nodes\": %zu,\n", r.rr_nodes);
    std::fprintf(f, "      \"rr_bytes\": %llu,\n",
                 static_cast<unsigned long long>(r.rr_bytes));
    std::fprintf(f, "      \"rr_bytes_per_node\": %.2f,\n",
                 r.rr_nodes ? static_cast<double>(r.rr_bytes) /
                                  static_cast<double>(r.rr_nodes)
                            : 0.0);
    // 0 when congestion-only; hexfloat-precise via %.17g so a diff of
    // two timing runs compares the critical path bitwise.
    std::fprintf(f, "      \"critical_path_s\": %.17g,\n",
                 r.fixed.critical_path_s);
    std::fprintf(f, "      \"tree_checksum\": \"%016llx\",\n",
                 static_cast<unsigned long long>(r.checksum));
    std::fprintf(f, "      \"counters\": {\n");
    std::fprintf(f, "        \"heap_pushes\": %llu,\n",
                 static_cast<unsigned long long>(c.heap_pushes));
    std::fprintf(f, "        \"heap_pops\": %llu,\n",
                 static_cast<unsigned long long>(c.heap_pops));
    std::fprintf(f, "        \"nodes_expanded\": %llu,\n",
                 static_cast<unsigned long long>(c.nodes_expanded));
    std::fprintf(f, "        \"sink_searches\": %llu,\n",
                 static_cast<unsigned long long>(c.sink_searches));
    std::fprintf(f, "        \"nets_routed\": %llu,\n",
                 static_cast<unsigned long long>(c.nets_routed));
    std::fprintf(f, "        \"nets_rerouted\": %llu,\n",
                 static_cast<unsigned long long>(c.nets_rerouted));
    std::fprintf(f, "        \"scratch_grows\": %llu,\n",
                 static_cast<unsigned long long>(c.scratch_grows));
    std::fprintf(f, "        \"lookahead_hits\": %llu,\n",
                 static_cast<unsigned long long>(c.lookahead_hits));
    std::fprintf(f, "        \"batches\": %llu,\n",
                 static_cast<unsigned long long>(c.batches));
    std::fprintf(f, "        \"conflict_replays\": %llu,\n",
                 static_cast<unsigned long long>(c.conflict_replays));
    std::fprintf(f, "        \"sta_net_evals\": %llu,\n",
                 static_cast<unsigned long long>(c.sta_net_evals));
    std::fprintf(f, "        \"sta_block_updates\": %llu,\n",
                 static_cast<unsigned long long>(c.sta_block_updates));
    std::fprintf(f, "        \"t_search_s\": %.6f,\n", c.t_search_s);
    std::fprintf(f, "        \"t_bookkeep_s\": %.6f,\n", c.t_bookkeep_s);
    std::fprintf(f, "        \"t_lookahead_build_s\": %.6f\n",
                 c.t_lookahead_build_s);
    std::fprintf(f, "      }\n");
    std::fprintf(f, "    }%s\n", i + 1 < reps.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// The --scale ladder: synthetic circuits sized for ~10/16/24-tile logic
/// grids (N = 10 LUTs per block). Deterministic in the spec, so both
/// backends route byte-identical workloads. The top size stays within
/// the lookahead builder's O(tiles^2) budget.
std::vector<SynthSpec> scale_specs() {
  std::vector<SynthSpec> specs(3);
  specs[0].name = "synth-s";
  specs[0].n_luts = 1000;
  specs[1].name = "synth-m";
  specs[1].n_luts = 2560;
  specs[2].name = "synth-l";
  specs[2].n_luts = 5760;
  for (auto& s : specs) {
    s.n_inputs = 48;
    s.n_outputs = 48;
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = "BENCH_route.json";
  std::vector<std::string> circuits = {"tseng", "alu4", "pdc"};
  bool scale = false;
  std::size_t threads = 0;  // 0 = keep the ambient NF_THREADS pool
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out")) {
      out = flag_operand("--out", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--smoke")) {
      circuits = {"tseng"};
    } else if (!std::strcmp(argv[i], "--scale")) {
      scale = true;
    } else if (!std::strcmp(argv[i], "--threads")) {
      threads = parse_size_flag("--threads", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--astar")) {
      g_route_opt.astar_factor =
          parse_double_flag("--astar", argc, argv, i);
      // astar 0 means "the pre-lookahead router", which was serial.
      if (g_route_opt.astar_factor == 0.0) g_route_opt.net_parallel = false;
    } else if (!std::strcmp(argv[i], "--par")) {
      g_route_opt.net_parallel = parse_bool_flag("--par", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--timing")) {
      g_route_opt.timing_driven = true;
    } else if (!std::strcmp(argv[i], "--crit-exp")) {
      g_route_opt.criticality_exp =
          parse_double_flag("--crit-exp", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--backend")) {
      g_route_opt.rr_backend = parse_backend_flag("--backend", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--partition")) {
      g_route_opt.partition_parallel =
          parse_bool_flag("--partition", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--partition-size")) {
      g_route_opt.partition_size =
          parse_size_flag("--partition-size", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--max-w")) {
      g_route_opt.max_channel_width =
          parse_size_flag("--max-w", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--verify-la")) {
      // Shadow every directed search with a zero-heuristic Dijkstra on
      // the same cost state: proves admissibility (suboptimal must stay
      // 0 at astar <= 1) and reports the heuristic's pruning ratio.
      g_route_opt.verify_lookahead = true;
    } else if (!std::strcmp(argv[i], "--circuits")) {
      circuits.clear();
      std::string s = flag_operand("--circuits", argc, argv, i);
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t c = s.find(',', pos);
        circuits.push_back(s.substr(pos, c - pos));
        pos = c == std::string::npos ? c : c + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: route_perf [--out FILE] [--circuits a,b,c] "
                   "[--smoke] [--scale] [--threads N] [--astar F] "
                   "[--par 0|1] [--timing] [--crit-exp E] "
                   "[--backend explicit|implicit] [--partition 0|1] "
                   "[--partition-size N] [--max-w N] [--verify-la]\n");
      return 2;
    }
  }

  std::unique_ptr<ThreadPool> own_pool;
  std::unique_ptr<ThreadPool::ScopedUse> own_use;
  if (threads > 0) {
    own_pool = std::make_unique<ThreadPool>(threads);
    own_use = std::make_unique<ThreadPool::ScopedUse>(*own_pool);
  }

  std::printf(
      "route_perf — PathFinder hot-path benchmark (%zu threads, "
      "astar=%.2f, net_parallel=%d, timing=%d, backend=%s, partition=%d)\n\n",
      ThreadPool::current().thread_count(), g_route_opt.astar_factor,
      static_cast<int>(g_route_opt.net_parallel),
      static_cast<int>(g_route_opt.timing_driven),
      g_route_opt.rr_backend == RrBackend::kImplicit ? "implicit"
                                                     : "explicit",
      static_cast<int>(g_route_opt.partition_parallel));
  std::vector<CircuitReport> reps;
  auto report = [&](const CircuitReport& r) {
    if (r.infeasible) {
      std::printf(
          "%-8s %5zu LUTs  infeasible: grow phase hit the W=%zu cap\n",
          r.name.c_str(), r.luts, r.w_cap);
      return;
    }
    const auto& c = r.fixed.counters;
    std::printf(
        "%-8s %5zu LUTs  Wmin=%-3zu (%6.2f s)  route@W=%-3zu %6.2f s  "
        "%zu iters  checksum %016llx\n",
        r.name.c_str(), r.luts, r.w_min, r.wmin_wall_s, r.w_fixed,
        r.route_wall_s, r.iterations,
        static_cast<unsigned long long>(r.checksum));
    std::printf(
        "         rr: %zu nodes, %.2f MiB resident (%.1f B/node)\n",
        r.rr_nodes, static_cast<double>(r.rr_bytes) / (1024.0 * 1024.0),
        r.rr_nodes ? static_cast<double>(r.rr_bytes) /
                         static_cast<double>(r.rr_nodes)
                   : 0.0);
    if (g_route_opt.timing_driven) {
      std::printf(
          "         critical_path=%.3f ns  sta_net_evals=%llu "
          "sta_block_updates=%llu\n",
          r.fixed.critical_path_s * 1e9,
          static_cast<unsigned long long>(c.sta_net_evals),
          static_cast<unsigned long long>(c.sta_block_updates));
    }
    std::printf(
        "         expanded=%llu pushes=%llu lookahead_hits=%llu "
        "batches=%llu replays=%llu la_build=%.3fs\n",
        static_cast<unsigned long long>(c.nodes_expanded),
        static_cast<unsigned long long>(c.heap_pushes),
        static_cast<unsigned long long>(c.lookahead_hits),
        static_cast<unsigned long long>(c.batches),
        static_cast<unsigned long long>(c.conflict_replays),
        c.t_lookahead_build_s);
    if (g_route_opt.verify_lookahead && c.verify_astar_expanded > 0) {
      std::printf(
          "         verify-la: dijkstra=%llu astar=%llu (%.2fx fewer) "
          "suboptimal=%llu\n",
          static_cast<unsigned long long>(c.verify_dijkstra_expanded),
          static_cast<unsigned long long>(c.verify_astar_expanded),
          static_cast<double>(c.verify_dijkstra_expanded) /
              static_cast<double>(c.verify_astar_expanded),
          static_cast<unsigned long long>(c.lookahead_suboptimal));
    }
  };
  if (scale) {
    for (const SynthSpec& spec : scale_specs()) {
      reps.push_back(
          run_circuit(spec.name, generate_netlist(spec), spec.n_luts));
      report(reps.back());
    }
  } else {
    for (const auto& name : circuits) {
      reps.push_back(run_circuit(name, generate_benchmark(name),
                                 benchmark_info(name).luts));
      report(reps.back());
    }
  }
  write_json(reps, out);
  std::printf("\nwrote %s\n", out);
  return 0;
}
