// Placer performance harness: anneals seed circuits under a chosen move
// discipline and emits BENCH_place.json (wall time, move throughput,
// batch/conflict/replay counters, final costs, a placement checksum and
// the post-route critical path at a fixed channel width) so every PR
// leaves a placer perf trajectory to regress against
// (tools/bench_check.py diffs two such files).
//
//   place_perf [--out FILE] [--circuits a,b,c] [--smoke] [--scale]
//              [--threads N] [--batch N] [--directed 0|1] [--timing]
//              [--naive] [--inner-num F] [--seed N] [--w N] [--no-route]
//
// --smoke runs only the smallest seed circuit (CTest target
// bench_place_smoke exercises the harness this way). --scale replaces
// the MCNC seed list with the three synthetic circuits route_perf's
// memory experiment uses — the placer speedup claim of EXPERIMENTS.md is
// measured on synth-l. --threads installs its own pool for the whole
// run (default: the ambient NF_THREADS pool). --batch sets
// PlaceOptions::batch_moves (0 = the serial seed-identical discipline);
// --naive evaluates moves with the seed annealer's full-rescan kernel
// (the measured perf baseline). --w sets the fixed channel width of the
// post-place routing pass whose critical path anchors the
// quality-neutrality claim; --no-route skips that pass for pure placer
// timing. Wall times and peak RSS vary run to run; the cost, checksum,
// counter and critical-path fields are bit-deterministic at any thread
// count (the batch size, not the thread count, shapes the anneal).
#include <sys/resource.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "arch/rr_graph.hpp"
#include "netlist/mcnc.hpp"
#include "netlist/synth_gen.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "timing/sta.hpp"
#include "timing/variant.hpp"
#include "util/thread_pool.hpp"

using namespace nemfpga;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t peak_rss_bytes() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;
}

// ---- strict flag parsing (route_perf's discipline: no silent atoi) ------

[[noreturn]] void flag_error(const char* flag, const char* tok) {
  std::fprintf(stderr, "place_perf: bad value for %s: '%s'\n", flag, tok);
  std::exit(2);
}

const char* flag_operand(const char* flag, int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "place_perf: missing value for %s\n", flag);
    std::exit(2);
  }
  return argv[++i];
}

std::size_t parse_size_flag(const char* flag, int argc, char** argv,
                            int& i) {
  const char* tok = flag_operand(flag, argc, argv, i);
  const std::size_t len = std::strlen(tok);
  if (len == 0 || len > 19) flag_error(flag, tok);
  std::size_t v = 0;
  for (std::size_t k = 0; k < len; ++k) {
    if (!std::isdigit(static_cast<unsigned char>(tok[k]))) {
      flag_error(flag, tok);
    }
    v = v * 10 + static_cast<std::size_t>(tok[k] - '0');
  }
  return v;
}

double parse_double_flag(const char* flag, int argc, char** argv, int& i) {
  const char* tok = flag_operand(flag, argc, argv, i);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok, &end);
  if (end == tok || *end != '\0' || errno == ERANGE || !std::isfinite(v)) {
    flag_error(flag, tok);
  }
  return v;
}

bool parse_bool_flag(const char* flag, int argc, char** argv, int& i) {
  const char* tok = flag_operand(flag, argc, argv, i);
  if (!std::strcmp(tok, "0")) return false;
  if (!std::strcmp(tok, "1")) return true;
  flag_error(flag, tok);
}

// -------------------------------------------------------------------------

/// FNV-1a over the block locations: the determinism fingerprint two runs
/// (different thread counts, different cost kernels) must share.
std::uint64_t placement_checksum(const Placement& pl) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(pl.nx);
  mix(pl.ny);
  for (const auto& l : pl.locs) {
    mix(l.x);
    mix(l.y);
    mix(l.sub);
  }
  return h;
}

struct CircuitReport {
  std::string name;
  std::size_t luts = 0;
  std::size_t blocks = 0;
  std::size_t nets = 0;
  double place_wall_s = 0.0;
  double final_cost = 0.0;
  double final_weighted_cost = 0.0;
  std::uint64_t checksum = 0;
  PlaceCounters counters;
  /// Post-place quality anchor: route at the fixed width and report the
  /// critical path (0 when --no-route or the width was unroutable).
  std::size_t route_w = 0;
  bool routed = false;
  double critical_path_s = 0.0;
};

/// Placer configuration under test; set once from the command line.
PlaceOptions g_popt;
std::size_t g_route_w = 48;
bool g_do_route = true;

CircuitReport run_circuit(const std::string& name, const Netlist& nl,
                          std::size_t luts) {
  CircuitReport rep;
  rep.name = name;
  rep.luts = luts;

  ArchParams arch;
  arch.W = 64;  // provisional; only pack/place look at it
  const Packing pk = pack_netlist(nl, arch);
  const auto [nx, ny] =
      grid_size_for(arch, pk.clusters.size(), pk.io_block_count());

  const double t0 = now_s();
  const Placement pl = place(nl, pk, arch, nx, ny, g_popt);
  rep.place_wall_s = now_s() - t0;
  rep.blocks = pl.locs.size();
  rep.nets = pl.nets.size();
  rep.final_cost = pl.final_cost;
  rep.final_weighted_cost = pl.final_weighted_cost;
  rep.checksum = placement_checksum(pl);
  rep.counters = pl.counters;

  if (g_do_route) {
    ArchParams fixed_arch = arch;
    fixed_arch.W = g_route_w;
    rep.route_w = g_route_w;
    const RrGraph g(fixed_arch, nx, ny);
    RouteOptions ropt;
    const RoutingResult r = route_all(g, pl, ropt);
    if (r.success) {
      rep.routed = true;
      const ElectricalView view =
          make_view(fixed_arch, FpgaVariant::kCmosBaseline);
      rep.critical_path_s =
          analyze_timing(nl, pk, pl, g, r, view).critical_path;
    } else {
      std::fprintf(stderr, "place_perf: %s unroutable at W=%zu\n",
                   name.c_str(), g_route_w);
    }
  }
  return rep;
}

void write_json(const std::vector<CircuitReport>& reps, const char* path) {
  FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "place_perf: cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"nemfpga-place-bench-1\",\n");
  std::fprintf(f, "  \"threads\": %zu,\n",
               ThreadPool::current().thread_count());
  // The placer config tuple bench_check pins: these knobs change the
  // anneal trajectory (deterministically). threads and cost_kernel do
  // NOT join it — both are bit-identity claims, and cross-thread /
  // cross-kernel diffs are exactly how those claims are audited.
  std::fprintf(f, "  \"batch_moves\": %zu,\n", g_popt.batch_moves);
  std::fprintf(f, "  \"directed\": %s,\n",
               g_popt.directed_moves ? "true" : "false");
  std::fprintf(f, "  \"timing_driven\": %s,\n",
               g_popt.timing_driven ? "true" : "false");
  std::fprintf(f, "  \"inner_num\": %.6f,\n", g_popt.inner_num);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(g_popt.seed));
  std::fprintf(f, "  \"cost_kernel\": \"%s\",\n",
               g_popt.naive_cost ? "naive" : "incremental");
  double total = 0.0;
  for (const auto& r : reps) total += r.place_wall_s;
  std::fprintf(f, "  \"total_wall_s\": %.6f,\n", total);
  std::fprintf(f, "  \"peak_rss_bytes\": %llu,\n",
               static_cast<unsigned long long>(peak_rss_bytes()));
  std::fprintf(f, "  \"circuits\": [\n");
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const auto& r = reps[i];
    const auto& c = r.counters;
    const double mps =
        r.place_wall_s > 0.0
            ? static_cast<double>(c.proposed) / r.place_wall_s
            : 0.0;
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(f, "      \"luts\": %zu,\n", r.luts);
    std::fprintf(f, "      \"blocks\": %zu,\n", r.blocks);
    std::fprintf(f, "      \"nets\": %zu,\n", r.nets);
    std::fprintf(f, "      \"place_wall_s\": %.6f,\n", r.place_wall_s);
    std::fprintf(f, "      \"moves\": %llu,\n",
                 static_cast<unsigned long long>(c.proposed));
    std::fprintf(f, "      \"moves_per_s\": %.1f,\n", mps);
    std::fprintf(f, "      \"accepted\": %llu,\n",
                 static_cast<unsigned long long>(c.accepted));
    std::fprintf(f, "      \"rescans\": %llu,\n",
                 static_cast<unsigned long long>(c.rescans));
    std::fprintf(f, "      \"directed_moves\": %llu,\n",
                 static_cast<unsigned long long>(c.directed));
    std::fprintf(f, "      \"batches\": %llu,\n",
                 static_cast<unsigned long long>(c.batches));
    std::fprintf(f, "      \"conflicts\": %llu,\n",
                 static_cast<unsigned long long>(c.conflicts));
    std::fprintf(f, "      \"repairs\": %llu,\n",
                 static_cast<unsigned long long>(c.repairs));
    std::fprintf(f, "      \"replays\": %llu,\n",
                 static_cast<unsigned long long>(c.replays));
    // %.17g so a diff of two runs compares the costs bitwise.
    std::fprintf(f, "      \"final_cost\": %.17g,\n", r.final_cost);
    std::fprintf(f, "      \"final_weighted_cost\": %.17g,\n",
                 r.final_weighted_cost);
    std::fprintf(f, "      \"cost_checksum\": \"%016llx\",\n",
                 static_cast<unsigned long long>(r.checksum));
    std::fprintf(f, "      \"route_w\": %zu,\n", r.route_w);
    std::fprintf(f, "      \"routed\": %s,\n", r.routed ? "true" : "false");
    std::fprintf(f, "      \"critical_path_s\": %.17g\n",
                 r.critical_path_s);
    std::fprintf(f, "    }%s\n", i + 1 < reps.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// The --scale ladder: the same deterministic synthetic specs
/// route_perf's memory experiment uses, so the two harnesses exercise
/// byte-identical workloads.
std::vector<SynthSpec> scale_specs() {
  std::vector<SynthSpec> specs(3);
  specs[0].name = "synth-s";
  specs[0].n_luts = 1000;
  specs[1].name = "synth-m";
  specs[1].n_luts = 2560;
  specs[2].name = "synth-l";
  specs[2].n_luts = 5760;
  for (auto& s : specs) {
    s.n_inputs = 48;
    s.n_outputs = 48;
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = "BENCH_place.json";
  std::vector<std::string> circuits = {"tseng", "alu4", "pdc"};
  bool scale = false;
  std::size_t threads = 0;  // 0 = keep the ambient NF_THREADS pool
  g_popt.inner_num = 0.3;   // the flow's default effort
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out")) {
      out = flag_operand("--out", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--smoke")) {
      circuits = {"tseng"};
    } else if (!std::strcmp(argv[i], "--scale")) {
      scale = true;
    } else if (!std::strcmp(argv[i], "--threads")) {
      threads = parse_size_flag("--threads", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--batch")) {
      g_popt.batch_moves = parse_size_flag("--batch", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--directed")) {
      g_popt.directed_moves = parse_bool_flag("--directed", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--timing")) {
      g_popt.timing_driven = true;
    } else if (!std::strcmp(argv[i], "--naive")) {
      g_popt.naive_cost = true;
    } else if (!std::strcmp(argv[i], "--inner-num")) {
      g_popt.inner_num = parse_double_flag("--inner-num", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--seed")) {
      g_popt.seed = parse_size_flag("--seed", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--w")) {
      g_route_w = parse_size_flag("--w", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--no-route")) {
      g_do_route = false;
    } else if (!std::strcmp(argv[i], "--circuits")) {
      circuits.clear();
      std::string s = flag_operand("--circuits", argc, argv, i);
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t c = s.find(',', pos);
        circuits.push_back(s.substr(pos, c - pos));
        pos = c == std::string::npos ? c : c + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: place_perf [--out FILE] [--circuits a,b,c] "
                   "[--smoke] [--scale] [--threads N] [--batch N] "
                   "[--directed 0|1] [--timing] [--naive] "
                   "[--inner-num F] [--seed N] [--w N] [--no-route]\n");
      return 2;
    }
  }

  std::unique_ptr<ThreadPool> own_pool;
  std::unique_ptr<ThreadPool::ScopedUse> own_use;
  if (threads > 0) {
    own_pool = std::make_unique<ThreadPool>(threads);
    own_use = std::make_unique<ThreadPool::ScopedUse>(*own_pool);
  }

  std::printf(
      "place_perf — annealer hot-path benchmark (%zu threads, batch=%zu, "
      "directed=%d, timing=%d, kernel=%s, inner_num=%.2f)\n\n",
      ThreadPool::current().thread_count(), g_popt.batch_moves,
      static_cast<int>(g_popt.directed_moves),
      static_cast<int>(g_popt.timing_driven),
      g_popt.naive_cost ? "naive" : "incremental", g_popt.inner_num);
  std::vector<CircuitReport> reps;
  auto report = [&](const CircuitReport& r) {
    const auto& c = r.counters;
    std::printf(
        "%-8s %5zu LUTs %5zu blocks  place %7.2f s  %8.0f moves/s  "
        "cost=%.1f  checksum %016llx\n",
        r.name.c_str(), r.luts, r.blocks, r.place_wall_s,
        r.place_wall_s > 0.0
            ? static_cast<double>(c.proposed) / r.place_wall_s
            : 0.0,
        r.final_cost, static_cast<unsigned long long>(r.checksum));
    std::printf(
        "         accepted=%llu rescans=%llu directed=%llu batches=%llu "
        "conflicts=%llu repairs=%llu replays=%llu\n",
        static_cast<unsigned long long>(c.accepted),
        static_cast<unsigned long long>(c.rescans),
        static_cast<unsigned long long>(c.directed),
        static_cast<unsigned long long>(c.batches),
        static_cast<unsigned long long>(c.conflicts),
        static_cast<unsigned long long>(c.repairs),
        static_cast<unsigned long long>(c.replays));
    if (r.routed) {
      std::printf("         route@W=%zu critical_path=%.3f ns\n", r.route_w,
                  r.critical_path_s * 1e9);
    }
  };
  if (scale) {
    for (const SynthSpec& spec : scale_specs()) {
      reps.push_back(
          run_circuit(spec.name, generate_netlist(spec), spec.n_luts));
      report(reps.back());
    }
  } else {
    for (const auto& name : circuits) {
      reps.push_back(run_circuit(name, generate_benchmark(name),
                                 benchmark_info(name).luts));
      report(reps.back());
    }
  }
  write_json(reps, out);
  std::printf("\nwrote %s\n", out);
  return 0;
}
