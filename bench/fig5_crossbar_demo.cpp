// Reproduces paper Fig 5: the 2x2 NEM relay programmable routing crossbar
// experiment — program / test / reset phases with Vhold = 5.2 V and
// Vselect = 0.8 V, 180-degree-shifted beam pulses, drains observed on the
// "scope". All 16 configurations are verified exhaustively, as in the
// paper. One configuration's waveforms are printed as an ASCII scope view.
#include <cmath>
#include <cstdio>

#include "circuit/vcd.hpp"
#include "program/waveform.hpp"

using namespace nemfpga;

namespace {

void print_waveforms(const CrossbarExperimentResult& res,
                     const CrossbarExperimentConfig& cfg) {
  // Sample ~70 columns across the run.
  const double t_end = res.waveforms.back().time;
  const std::size_t cols = 70;
  auto row = [&](const char* name, CktNodeId node, double scale) {
    std::printf("  %-7s|", name);
    for (std::size_t c = 0; c < cols; ++c) {
      const double t = t_end * static_cast<double>(c) / (cols - 1);
      double v = 0.0;
      for (const auto& p : res.waveforms) {
        if (p.time > t) break;
        v = p.v[node];
      }
      const double x = v / scale;
      std::printf("%c", x > 0.66 ? '#' : x > 0.15 ? '+' : x < -0.15 ? '-' : '.');
    }
    std::printf("|\n");
  };
  const double vprog = cfg.voltages.vhold + cfg.voltages.vselect;
  row("Gate1", res.gate_nodes[0], vprog);
  row("Gate2", res.gate_nodes[1], vprog);
  row("Beam1", res.beam_nodes[0], cfg.pulse_amplitude);
  row("Beam2", res.beam_nodes[1], cfg.pulse_amplitude);
  row("Drain1", res.drain_nodes[0], cfg.pulse_amplitude);
  row("Drain2", res.drain_nodes[1], cfg.pulse_amplitude);
  std::printf("  %-7s|%-22s|%-23s|%-23s|\n", "phase", " program", " test",
              " reset");
}

}  // namespace

int main() {
  std::printf("Fig 5 — 2x2 NEM relay crossbar: program / test / reset\n");
  std::printf("(Vhold = %.1f V, Vselect = %.1f V, relay Ron = 100 kOhm as\n"
              " measured on the crossbar devices, Sec 2.3)\n\n",
              paper_crossbar_voltages().vhold,
              paper_crossbar_voltages().vselect);

  CrossbarExperimentConfig cfg;
  std::size_t pass = 0, total = 0;
  CrossbarExperimentResult shown;
  bool have_shown = false;
  for (const auto& target : CrossbarPattern::all_patterns(2, 2)) {
    auto res = run_crossbar_experiment(target, cfg);
    ++total;
    pass += res.pass;
    std::printf("config [%c%c/%c%c]: program %-4s  test %-4s  reset %-4s\n",
                target.at(0, 0) ? 'X' : '.', target.at(0, 1) ? 'X' : '.',
                target.at(1, 0) ? 'X' : '.', target.at(1, 1) ? 'X' : '.',
                res.programmed_correctly ? "OK" : "FAIL",
                res.test_passed ? "OK" : "FAIL",
                res.reset_verified ? "OK" : "FAIL");
    // Keep the paper's example configuration (one closed relay) on screen.
    if (!have_shown && target.at(0, 0) && !target.at(0, 1) &&
        !target.at(1, 0) && !target.at(1, 1)) {
      shown = std::move(res);
      have_shown = true;
    }
  }
  std::printf("\nexhaustive verification: %zu / %zu configurations correct "
              "(paper: all)\n\n", pass, total);

  if (have_shown) {
    std::vector<CktNodeId> probe;
    for (auto n : shown.gate_nodes) probe.push_back(n);
    for (auto n : shown.beam_nodes) probe.push_back(n);
    for (auto n : shown.drain_nodes) probe.push_back(n);
    VcdOptions vopt;
    vopt.timescale = "1us";
    vopt.time_scale = 1e6;
    write_vcd_file(shown.node_names, shown.waveforms, probe,
                   "fig5_waveforms.vcd", vopt);
    std::printf("(full waveforms dumped to fig5_waveforms.vcd)\n\n");
    std::printf("waveforms for config [X./..] (beam1 routed to drain1):\n");
    print_waveforms(shown, cfg);
    std::printf("\n-> drain1 follows beam1's pulses during test; all drains\n"
                "   go quiet after the gates drop to 0 V (reset), exactly\n"
                "   the observable of the paper's oscilloscope traces.\n");
  }
  return pass == total ? 0 : 1;
}
