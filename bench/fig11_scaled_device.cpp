// Reproduces paper Fig 11: the 22 nm-node scaled NEM relay — dimensions,
// equivalent-circuit parameters (Ron / Con / Coff) and switching voltages —
// derived from our calibrated physics model and compared against the
// paper's stated values.
#include <cstdio>

#include "device/equivalent.hpp"
#include "device/nem_relay.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace nemfpga;

int main() {
  std::printf("Fig 11 — scaled 22 nm NEM relay device parameters\n\n");
  const RelayDesign d = scaled_relay_22nm();
  const auto eq = equivalent_circuit(d);

  TextTable dims({"dimension", "model", "paper (Fig 11)"});
  dims.add_row({"L", TextTable::num(d.geometry.length / nano, 0) + " nm",
                "275 nm"});
  dims.add_row({"h", TextTable::num(d.geometry.thickness / nano, 0) + " nm",
                "11 nm"});
  dims.add_row({"g0", TextTable::num(d.geometry.gap / nano, 0) + " nm",
                "11 nm"});
  dims.add_row({"gmin", TextTable::num(d.geometry.gap_min / nano, 1) + " nm",
                "3.6 nm"});
  std::printf("%s\n", dims.to_string().c_str());

  TextTable elec({"parameter", "model", "paper (Fig 11)"});
  elec.add_row({"Ron", TextTable::num(eq.ron / 1e3, 1) + " kOhm",
                "2 kOhm (experimental)"});
  elec.add_row({"Con", TextTable::num(eq.con / atto, 1) + " aF",
                "20 aF (simulation)"});
  elec.add_row({"Coff", TextTable::num(eq.coff / atto, 1) + " aF",
                "6.7 aF (simulation)"});
  elec.add_row({"Ioff", "0 (mechanical gap)", "0"});
  std::printf("%s\n", elec.to_string().c_str());

  std::printf("switching voltages through scaling (paper: ~1 V class):\n");
  std::printf("  Vpi = %.3f V   Vpo = %.3f V   window = %.3f V\n",
              d.pull_in_voltage(), d.pull_out_voltage(),
              d.hysteresis_window());
  std::printf("\ncontamination ablation (Sec 2.3: crossbar relays measured\n"
              "~100 kOhm instead of 2 kOhm):\n");
  for (double factor : {1.0, 10.0, 50.0}) {
    ContactModel c;
    c.contamination_factor = factor;
    std::printf("  contamination x%-4.0f -> Ron = %6.0f Ohm\n", factor,
                equivalent_circuit(d, c).ron);
  }
  return 0;
}
