// Reproduces paper Fig 4: the half-select programming scheme — the three
// voltage levels (Vhold, -Vselect, Vhold+Vselect) and the constraints they
// satisfy relative to the relay's hysteresis window, demonstrated on an
// array where exactly one relay is pulled in while all others retain state.
#include <cstdio>

#include "program/half_select.hpp"
#include "util/table.hpp"

using namespace nemfpga;

namespace {

void demo(const char* title, const RelayDesign& d) {
  std::printf("=== %s ===\n", title);
  const double vpi = d.pull_in_voltage();
  const double vpo = d.pull_out_voltage();
  PopulationEnvelope env;
  env.vpi_min = env.vpi_max = vpi;
  env.vpo_min = env.vpo_max = vpo;
  env.min_hysteresis = vpi - vpo;
  const auto v = solve_program_window(env);
  if (!v) {
    std::printf("no programming window!\n");
    return;
  }
  std::printf("Vpi=%.3f V  Vpo=%.3f V\n", vpi, vpo);
  std::printf("Vhold=%.3f V  Vselect=%.3f V\n", v->vhold, v->vselect);
  std::printf("constraint check (Fig 4):\n");
  std::printf("  Vpo < Vhold < Vpi            : %.3f < %.3f < %.3f  %s\n",
              vpo, v->vhold, vpi,
              (vpo < v->vhold && v->vhold < vpi) ? "OK" : "FAIL");
  std::printf("  Vpo < Vhold+Vselect < Vpi    : %.3f < %.3f < %.3f  %s\n",
              vpo, v->vhold + v->vselect, vpi,
              (vpo < v->vhold + v->vselect && v->vhold + v->vselect < vpi)
                  ? "OK"
                  : "FAIL");
  std::printf("  Vhold+2*Vselect > Vpi        : %.3f > %.3f          %s\n\n",
              v->vhold + 2 * v->vselect, vpi,
              (v->vhold + 2 * v->vselect > vpi) ? "OK" : "FAIL");

  // Array demonstration: 4x4, pull in only relay (1, 2).
  RelayCrossbar xbar(4, 4, d);
  CrossbarPattern target(4, 4);
  target.set(1, 2, true);
  const auto got = program_half_select(xbar, target, *v);
  std::printf("4x4 array, target = only (row 1, col 2); programmed state:\n");
  for (std::size_t r = 0; r < 4; ++r) {
    std::printf("  ");
    for (std::size_t c = 0; c < 4; ++c) {
      std::printf("%c ", got.at(r, c) ? 'X' : '.');
    }
    std::printf("\n");
  }
  std::printf("correct: %s\n\n", got == target ? "YES" : "NO");
}

}  // namespace

int main() {
  std::printf(
      "Fig 4 — half-select programming voltages and array selection\n\n");
  demo("fabricated device (oil, ~6 V class)", fabricated_relay());
  demo("22 nm scaled device (Fig 11, sub-1V class)", scaled_relay_22nm());
  std::printf("paper's crossbar demo used Vhold=5.2 V, Vselect=0.8 V;\n");
  const RelayDesign d = fabricated_relay();
  std::printf("those levels are valid for the nominal device here too: %s\n",
              voltages_work_for(d.pull_in_voltage(), d.pull_out_voltage(),
                                paper_crossbar_voltages())
                  ? "YES"
                  : "NO");
  return 0;
}
