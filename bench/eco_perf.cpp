// ECO-flow performance harness: compiles seed circuits into a live
// EcoFlow session, replays a seeded randomized edit stream (the same
// generator the prop_eco_diff harness shrinks against) and emits
// BENCH_eco.json (p50/p99 apply and reroute latencies, status tallies,
// reroute/invalidation counters, the final tree checksum and critical
// path, and the from-scratch route wall time of the final state) so
// every PR leaves an ECO latency trajectory to regress against
// (tools/bench_check.py diffs two such files, family "eco").
//
//   eco_perf [--out FILE] [--circuits a,b,c] [--smoke] [--scale]
//            [--threads N] [--edits N] [--edit-seed S] [--seed S]
//            [--w N] [--inner-num F]
//
// --smoke runs only the smallest seed circuit with a short stream (the
// CTest target bench_eco_smoke exercises the harness this way). --scale
// replaces the MCNC seed list with route_perf's synthetic ladder
// (synth-s/m/l) — the EXPERIMENTS.md speedup claim (median single-edit
// reroute vs a from-scratch route of the same state) is measured there.
// --edit-seed selects the edit stream; it joins the bench_check
// configuration tuple because a different stream applies different
// edits, so neither the latency percentiles nor the status tallies are
// comparable across it. Wall times, RSS and the latency percentiles
// vary run to run; the status tallies, counters, checksum and critical
// path are bit-deterministic at any thread count (the ECO reroute
// sessions run the deterministic batched scheduler).
#include <sys/resource.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "flow/eco.hpp"
#include "netlist/mcnc.hpp"
#include "netlist/synth_gen.hpp"
#include "route/route.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "verify/generators.hpp"

using namespace nemfpga;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t peak_rss_bytes() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;
}

// ---- strict flag parsing (route_perf's discipline: no silent atoi) ------

[[noreturn]] void flag_error(const char* flag, const char* tok) {
  std::fprintf(stderr, "eco_perf: bad value for %s: '%s'\n", flag, tok);
  std::exit(2);
}

const char* flag_operand(const char* flag, int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "eco_perf: missing value for %s\n", flag);
    std::exit(2);
  }
  return argv[++i];
}

std::size_t parse_size_flag(const char* flag, int argc, char** argv,
                            int& i) {
  const char* tok = flag_operand(flag, argc, argv, i);
  const std::size_t len = std::strlen(tok);
  if (len == 0 || len > 19) flag_error(flag, tok);
  std::size_t v = 0;
  for (std::size_t k = 0; k < len; ++k) {
    if (!std::isdigit(static_cast<unsigned char>(tok[k]))) {
      flag_error(flag, tok);
    }
    v = v * 10 + static_cast<std::size_t>(tok[k] - '0');
  }
  return v;
}

double parse_double_flag(const char* flag, int argc, char** argv, int& i) {
  const char* tok = flag_operand(flag, argc, argv, i);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok, &end);
  if (end == tok || *end != '\0' || errno == ERANGE || !std::isfinite(v)) {
    flag_error(flag, tok);
  }
  return v;
}

// -------------------------------------------------------------------------

/// FNV-1a over the live route trees: the determinism fingerprint two
/// runs (any thread counts) of the same edit stream must share.
std::uint64_t routing_checksum(const RoutingResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& t : r.trees) {
    mix(t.source);
    mix(t.edges.size());
    for (const auto& [from, to] : t.edges) {
      mix((static_cast<std::uint64_t>(from) << 32) | to);
    }
    for (RrNodeId s : t.sinks) mix(s);
  }
  return h;
}

/// Nearest-rank percentile of an unsorted sample (q in (0, 1]).
double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(v.size())));
  return v[rank == 0 ? 0 : rank - 1];
}

struct CircuitReport {
  std::string name;
  std::size_t luts = 0;
  std::size_t blocks = 0;
  std::size_t nets = 0;
  // Status tallies over the stream (deterministic).
  std::size_t ok = 0;
  std::size_t rejected = 0;
  std::size_t unroutable = 0;
  std::size_t full_fallbacks = 0;
  // Work counters summed over the stream (deterministic).
  std::uint64_t nets_invalidated = 0;
  std::uint64_t nets_rerouted = 0;
  std::uint64_t blocks_moved = 0;
  std::uint64_t sta_nets_evaluated = 0;
  std::uint64_t checksum = 0;
  bool final_cycle = false;  ///< Stream left a combinational cycle.
  double critical_path_s = 0.0;  ///< Last timing-valid critical path.
  // Latency distribution over the kOk applies (wall; noisy).
  double base_compile_s = 0.0;
  double apply_p50_s = 0.0;
  double apply_p99_s = 0.0;
  double reroute_p50_s = 0.0;
  double reroute_p99_s = 0.0;
  /// From-scratch route_all of the final session state, and the headline
  /// ratio: scratch wall over the median single-edit reroute wall.
  double scratch_route_s = 0.0;
  double speedup_p50 = 0.0;
  double wall_s = 0.0;  ///< Base compile + stream + scratch reference.
};

/// ECO configuration under test; set once from the command line.
EcoOptions g_opt;
std::size_t g_edits = 50;
std::uint64_t g_edit_seed = 1;

CircuitReport run_circuit(const std::string& name, Netlist nl,
                          std::size_t luts) {
  CircuitReport rep;
  rep.name = name;
  rep.luts = luts;

  const double t_start = now_s();
  EcoFlow flow(std::move(nl), g_opt);
  rep.base_compile_s = now_s() - t_start;
  rep.blocks = flow.placement().locs.size();
  rep.nets = flow.placement().nets.size();
  if (!flow.routed()) {
    std::fprintf(stderr, "eco_perf: %s unroutable at session W=%zu\n",
                 name.c_str(), g_opt.arch.W);
    std::exit(1);
  }

  std::vector<double> apply_s, reroute_s;
  for (std::size_t step = 0; step < g_edits; ++step) {
    Rng erng = Rng::from_stream(g_edit_seed, step);
    const NetlistDelta d = verify::gen_eco_delta(
        erng, flow.netlist(), flow.packing(), flow.arch(), flow.nx(),
        flow.ny(), flow.placement().locs);
    const double t0 = now_s();
    const EcoResult r = flow.apply(d);
    const double dt = now_s() - t0;
    switch (r.status) {
      case EcoStatus::kOk:
        ++rep.ok;
        apply_s.push_back(dt);
        reroute_s.push_back(r.reroute_wall_s);
        break;
      case EcoStatus::kRejected: ++rep.rejected; break;
      case EcoStatus::kUnroutable: ++rep.unroutable; break;
      case EcoStatus::kNoop: break;  // generator never emits empty deltas
    }
    rep.full_fallbacks += r.full_fallback ? 1 : 0;
    rep.nets_invalidated += r.nets_invalidated;
    rep.nets_rerouted += r.nets_rerouted;
    rep.blocks_moved += r.blocks_moved;
    rep.sta_nets_evaluated += r.sta_nets_evaluated;
  }
  if (rep.ok == 0) {
    std::fprintf(stderr,
                 "eco_perf: %s: no edit in the stream applied cleanly; "
                 "latency percentiles are meaningless (try another "
                 "--edit-seed)\n",
                 name.c_str());
  }
  rep.checksum = routing_checksum(flow.routing());
  rep.final_cycle = flow.has_comb_cycle();
  rep.critical_path_s = flow.critical_path_s();
  rep.apply_p50_s = percentile(apply_s, 0.50);
  rep.apply_p99_s = percentile(apply_s, 0.99);
  rep.reroute_p50_s = percentile(reroute_s, 0.50);
  rep.reroute_p99_s = percentile(reroute_s, 0.99);

  // The denominator of the headline claim: a from-scratch route of the
  // exact final state, under the session's own route options.
  const double t1 = now_s();
  const RoutingResult scratch =
      route_all(flow.graph(), flow.placement(), g_opt.route);
  rep.scratch_route_s = now_s() - t1;
  if (!scratch.success) {
    std::fprintf(stderr,
                 "eco_perf: %s: from-scratch reference route failed at "
                 "W=%zu (the session's state is routed; the reference is "
                 "reported as 0)\n",
                 name.c_str(), g_opt.arch.W);
    rep.scratch_route_s = 0.0;
  }
  if (rep.reroute_p50_s > 0.0 && rep.scratch_route_s > 0.0) {
    rep.speedup_p50 = rep.scratch_route_s / rep.reroute_p50_s;
  }
  rep.wall_s = now_s() - t_start;
  return rep;
}

void write_json(const std::vector<CircuitReport>& reps, const char* path) {
  FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "eco_perf: cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"nemfpga-eco-bench-1\",\n");
  std::fprintf(f, "  \"threads\": %zu,\n",
               ThreadPool::current().thread_count());
  // The ECO config tuple bench_check pins: the session width, the edit
  // stream (seed + length) and the local-replace seed select which edits
  // run. threads does NOT join it — the replay is a thread-count
  // bit-identity claim, and cross-thread diffs are exactly its audit.
  std::fprintf(f, "  \"w\": %zu,\n", g_opt.arch.W);
  std::fprintf(f, "  \"edits\": %zu,\n", g_edits);
  std::fprintf(f, "  \"edit_seed\": %llu,\n",
               static_cast<unsigned long long>(g_edit_seed));
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(g_opt.seed));
  double total = 0.0;
  for (const auto& r : reps) total += r.wall_s;
  std::fprintf(f, "  \"total_wall_s\": %.6f,\n", total);
  std::fprintf(f, "  \"peak_rss_bytes\": %llu,\n",
               static_cast<unsigned long long>(peak_rss_bytes()));
  std::fprintf(f, "  \"circuits\": [\n");
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const auto& r = reps[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(f, "      \"luts\": %zu,\n", r.luts);
    std::fprintf(f, "      \"blocks\": %zu,\n", r.blocks);
    std::fprintf(f, "      \"nets\": %zu,\n", r.nets);
    std::fprintf(f, "      \"ok\": %zu,\n", r.ok);
    std::fprintf(f, "      \"rejected\": %zu,\n", r.rejected);
    std::fprintf(f, "      \"unroutable\": %zu,\n", r.unroutable);
    std::fprintf(f, "      \"full_fallbacks\": %zu,\n", r.full_fallbacks);
    std::fprintf(f, "      \"nets_invalidated\": %llu,\n",
                 static_cast<unsigned long long>(r.nets_invalidated));
    std::fprintf(f, "      \"nets_rerouted\": %llu,\n",
                 static_cast<unsigned long long>(r.nets_rerouted));
    std::fprintf(f, "      \"blocks_moved\": %llu,\n",
                 static_cast<unsigned long long>(r.blocks_moved));
    std::fprintf(f, "      \"sta_nets_evaluated\": %llu,\n",
                 static_cast<unsigned long long>(r.sta_nets_evaluated));
    std::fprintf(f, "      \"tree_checksum\": \"%016llx\",\n",
                 static_cast<unsigned long long>(r.checksum));
    std::fprintf(f, "      \"final_cycle\": %s,\n",
                 r.final_cycle ? "true" : "false");
    // %.17g so a diff of two runs compares the path bitwise (the last
    // timing-valid path when the stream left a combinational cycle).
    std::fprintf(f, "      \"critical_path_s\": %.17g,\n",
                 r.critical_path_s);
    std::fprintf(f, "      \"base_compile_s\": %.6f,\n", r.base_compile_s);
    std::fprintf(f, "      \"apply_p50_s\": %.6f,\n", r.apply_p50_s);
    std::fprintf(f, "      \"apply_p99_s\": %.6f,\n", r.apply_p99_s);
    std::fprintf(f, "      \"reroute_p50_s\": %.6f,\n", r.reroute_p50_s);
    std::fprintf(f, "      \"reroute_p99_s\": %.6f,\n", r.reroute_p99_s);
    std::fprintf(f, "      \"scratch_route_s\": %.6f,\n",
                 r.scratch_route_s);
    std::fprintf(f, "      \"speedup_p50\": %.2f\n", r.speedup_p50);
    std::fprintf(f, "    }%s\n", i + 1 < reps.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// The --scale ladder: route_perf's deterministic synthetic specs, so
/// the ECO latency ladder and the router memory ladder share workloads.
std::vector<SynthSpec> scale_specs() {
  std::vector<SynthSpec> specs(3);
  specs[0].name = "synth-s";
  specs[0].n_luts = 1000;
  specs[1].name = "synth-m";
  specs[1].n_luts = 2560;
  specs[2].name = "synth-l";
  specs[2].n_luts = 5760;
  for (auto& s : specs) {
    s.n_inputs = 48;
    s.n_outputs = 48;
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = "BENCH_eco.json";
  std::vector<std::string> circuits = {"tseng", "alu4"};
  bool scale = false;
  bool smoke = false;
  bool edits_set = false;
  bool w_set = false;
  std::size_t threads = 0;  // 0 = keep the ambient NF_THREADS pool
  g_opt.arch.W = 64;        // generous session width: edits stay routable
  g_opt.place.inner_num = 0.3;  // the flow's default effort
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out")) {
      out = flag_operand("--out", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--smoke")) {
      smoke = true;
      circuits = {"tseng"};
    } else if (!std::strcmp(argv[i], "--scale")) {
      scale = true;
    } else if (!std::strcmp(argv[i], "--threads")) {
      threads = parse_size_flag("--threads", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--edits")) {
      g_edits = parse_size_flag("--edits", argc, argv, i);
      edits_set = true;
    } else if (!std::strcmp(argv[i], "--edit-seed")) {
      g_edit_seed = parse_size_flag("--edit-seed", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--seed")) {
      g_opt.seed = parse_size_flag("--seed", argc, argv, i);
      g_opt.place.seed = g_opt.seed;
    } else if (!std::strcmp(argv[i], "--w")) {
      g_opt.arch.W = parse_size_flag("--w", argc, argv, i);
      w_set = true;
    } else if (!std::strcmp(argv[i], "--inner-num")) {
      g_opt.place.inner_num =
          parse_double_flag("--inner-num", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--circuits")) {
      circuits.clear();
      std::string s = flag_operand("--circuits", argc, argv, i);
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t c = s.find(',', pos);
        circuits.push_back(s.substr(pos, c - pos));
        pos = c == std::string::npos ? c : c + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: eco_perf [--out FILE] [--circuits a,b,c] "
                   "[--smoke] [--scale] [--threads N] [--edits N] "
                   "[--edit-seed S] [--seed S] [--w N] [--inner-num F]\n");
      return 2;
    }
  }
  if (smoke && !edits_set) g_edits = 10;
  // synth-l's Wmin is ~87 on this ladder (see route_perf --scale); the
  // MCNC default of 64 would refuse its base compile.
  if (scale && !w_set) g_opt.arch.W = 128;

  std::unique_ptr<ThreadPool> own_pool;
  std::unique_ptr<ThreadPool::ScopedUse> own_use;
  if (threads > 0) {
    own_pool = std::make_unique<ThreadPool>(threads);
    own_use = std::make_unique<ThreadPool::ScopedUse>(*own_pool);
  }

  std::printf(
      "eco_perf — incremental ECO latency benchmark (%zu threads, W=%zu, "
      "%zu edits, edit_seed=%llu)\n\n",
      ThreadPool::current().thread_count(), g_opt.arch.W, g_edits,
      static_cast<unsigned long long>(g_edit_seed));
  std::vector<CircuitReport> reps;
  auto report = [&](const CircuitReport& r) {
    std::printf(
        "%-8s %5zu LUTs %5zu nets  compile %6.2f s  "
        "ok=%zu rejected=%zu unroutable=%zu fallbacks=%zu\n",
        r.name.c_str(), r.luts, r.nets, r.base_compile_s, r.ok, r.rejected,
        r.unroutable, r.full_fallbacks);
    std::printf(
        "         apply p50=%.1f ms p99=%.1f ms  reroute p50=%.1f ms "
        "p99=%.1f ms  scratch=%.1f ms  speedup(p50)=%.1fx\n",
        r.apply_p50_s * 1e3, r.apply_p99_s * 1e3, r.reroute_p50_s * 1e3,
        r.reroute_p99_s * 1e3, r.scratch_route_s * 1e3, r.speedup_p50);
    std::printf(
        "         rerouted=%llu/%llu invalidated  checksum %016llx  "
        "critical_path=%.3f ns\n",
        static_cast<unsigned long long>(r.nets_rerouted),
        static_cast<unsigned long long>(r.nets_invalidated),
        static_cast<unsigned long long>(r.checksum),
        r.critical_path_s * 1e9);
  };
  if (scale) {
    for (const SynthSpec& spec : scale_specs()) {
      reps.push_back(
          run_circuit(spec.name, generate_netlist(spec), spec.n_luts));
      report(reps.back());
    }
  } else {
    for (const auto& name : circuits) {
      reps.push_back(run_circuit(name, generate_benchmark(name),
                                 benchmark_info(name).luts));
      report(reps.back());
    }
  }
  write_json(reps, out);
  std::printf("\nwrote %s\n", out);
  return 0;
}
