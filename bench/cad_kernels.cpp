// google-benchmark micro-benchmarks of the CAD-flow kernels (infrastructure
// performance, not a paper figure): Elmore evaluation, RR-graph
// construction, placement annealing and PathFinder routing.
#include <benchmark/benchmark.h>

#include "arch/rr_graph.hpp"
#include "circuit/rc_tree.hpp"
#include "netlist/synth_gen.hpp"
#include "pack/pack.hpp"
#include "place/place.hpp"
#include "route/route.hpp"
#include "timing/variant.hpp"

namespace nemfpga {
namespace {

void BM_ElmoreLadder(benchmark::State& state) {
  RcTree t;
  RcNodeId prev = 0;
  for (int i = 0; i < state.range(0); ++i) {
    prev = t.add_node(prev, 100.0, 1e-15);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.elmore_all(1000.0));
  }
}
BENCHMARK(BM_ElmoreLadder)->Arg(16)->Arg(256);

void BM_RrGraphBuild(benchmark::State& state) {
  ArchParams arch;
  arch.W = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    RrGraph g(arch, 12, 12);
    benchmark::DoNotOptimize(g.node_count());
  }
}
BENCHMARK(BM_RrGraphBuild)->Arg(40)->Arg(118);

struct FlowFixture {
  Netlist nl;
  ArchParams arch;
  Packing pk;
  std::size_t nx, ny;

  FlowFixture() {
    SynthSpec spec;
    spec.name = "bench-kernels";
    spec.n_luts = 400;
    spec.n_inputs = 20;
    spec.n_outputs = 16;
    spec.n_latches = 60;
    nl = generate_netlist(spec);
    arch.W = 64;
    pk = pack_netlist(nl, arch);
    const auto grid = grid_size_for(arch, pk.clusters.size(),
                                    pk.io_block_count());
    nx = grid.first;
    ny = grid.second;
  }
};

void BM_Pack(benchmark::State& state) {
  FlowFixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack_netlist(f.nl, f.arch));
  }
}
BENCHMARK(BM_Pack);

void BM_Place(benchmark::State& state) {
  FlowFixture f;
  PlaceOptions opt;
  opt.inner_num = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(place(f.nl, f.pk, f.arch, f.nx, f.ny, opt));
  }
}
BENCHMARK(BM_Place);

void BM_Route(benchmark::State& state) {
  FlowFixture f;
  const Placement pl = place(f.nl, f.pk, f.arch, f.nx, f.ny);
  const RrGraph g(f.arch, f.nx, f.ny);
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_all(g, pl));
  }
}
BENCHMARK(BM_Route);

void BM_MakeView(benchmark::State& state) {
  ArchParams arch;
  arch.W = 118;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        make_view(arch, FpgaVariant::kNemOptimized, 4.0));
  }
}
BENCHMARK(BM_MakeView);

}  // namespace
}  // namespace nemfpga

BENCHMARK_MAIN();
