// Reproduces paper Fig 9: dynamic and leakage power breakdown of the
// baseline CMOS-only FPGA at W = 118 / 22 nm, averaged (geometric mean of
// shares) over a set of mapped MCNC benchmarks.
//
// Paper's values — dynamic: wires 40%, routing buffers 30%, LUTs 20%,
// clocking 10%; leakage: routing buffers 70%, routing SRAMs 12%, routing
// pass transistors 10%, LUTs 8%.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/study.hpp"
#include "netlist/mcnc.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace nemfpga;

int main() {
  const bool full = std::getenv("NF_FULL") != nullptr;
  std::vector<std::string> names;
  if (full) {
    for (const auto& b : mcnc20()) names.push_back(b.name);
  } else {
    names = {"tseng", "ex5p", "alu4", "seq", "diffeq", "elliptic"};
  }
  std::printf("Fig 9 — baseline CMOS-only FPGA power breakdown (W=118, "
              "22 nm)\n%s\n",
              full ? "" : "(subset; NF_FULL=1 runs all 20 MCNC circuits)");

  std::vector<double> dw, db, dl, dc, lb, ls, lp, ll;
  for (const auto& name : names) {
    FlowOptions opt;
    opt.arch.W = 118;
    const auto flow = run_flow(generate_benchmark(name), opt);
    const auto m = evaluate_variant(flow, FpgaVariant::kCmosBaseline);
    const auto& p = m.power;
    const double dyn = p.dynamic_total();
    const double leak = p.leakage_total();
    dw.push_back(p.dyn_wires / dyn);
    db.push_back(p.dyn_routing_buffers / dyn);
    dl.push_back(p.dyn_luts / dyn);
    dc.push_back(p.dyn_clocking / dyn);
    lb.push_back(p.leak_routing_buffers / leak);
    ls.push_back(p.leak_routing_sram / leak);
    lp.push_back(p.leak_pass_transistors / leak);
    ll.push_back(p.leak_luts / leak);
    std::printf("  %-10s cp=%6.2f ns  dyn=%6.3f mW  leak=%6.3f mW\n",
                name.c_str(), m.critical_path * 1e9, dyn * 1e3, leak * 1e3);
  }

  auto mean = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return 100.0 * s / static_cast<double>(v.size());
  };

  std::printf("\ndynamic power breakdown (mean share over circuits):\n");
  TextTable d({"component", "model", "paper (Fig 9)"});
  d.add_row({"Wire interconnects", TextTable::num(mean(dw), 0) + "%", "40%"});
  d.add_row({"Routing buffers", TextTable::num(mean(db), 0) + "%", "30%"});
  d.add_row({"LUTs", TextTable::num(mean(dl), 0) + "%", "20%"});
  d.add_row({"Clocking", TextTable::num(mean(dc), 0) + "%", "10%"});
  std::printf("%s\n", d.to_string().c_str());

  std::printf("leakage power breakdown (mean share over circuits):\n");
  TextTable l({"component", "model", "paper (Fig 9)"});
  l.add_row({"Routing buffers", TextTable::num(mean(lb), 0) + "%", "70%"});
  l.add_row({"Routing SRAMs", TextTable::num(mean(ls), 0) + "%", "12%"});
  l.add_row({"Routing pass transistors", TextTable::num(mean(lp), 0) + "%", "10%"});
  l.add_row({"LUTs", TextTable::num(mean(ll), 0) + "%", "8%"});
  std::printf("%s", l.to_string().c_str());
  std::printf("\n-> routing buffers dominate leakage and carry ~1/3 of\n"
              "   dynamic power: the headroom the paper's selective buffer\n"
              "   removal / downsizing technique goes after (Sec 3.2).\n");
  return 0;
}
