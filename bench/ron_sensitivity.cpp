// Ablation for Sec 2.3: "High Ron values are not desirable for FPGA
// programmable routing." The crossbar relays measured ~100 kOhm instead of
// the 2 kOhm of [Parsa 10]; this bench sweeps the relay on-resistance and
// reports the application critical path and the speedup over the CMOS
// baseline, quantifying how much contact quality matters.
#include <cstdio>
#include <vector>

#include "core/study.hpp"
#include "netlist/mcnc.hpp"
#include "util/table.hpp"

using namespace nemfpga;

int main() {
  std::printf("Ron sensitivity — relay contact resistance vs application "
              "speed (Sec 2.3)\n\n");
  FlowOptions opt;
  opt.arch.W = 118;
  const auto flow = run_flow(generate_benchmark("alu4"), opt);
  const auto baseline = evaluate_variant(flow, FpgaVariant::kCmosBaseline);
  std::printf("circuit: alu4 (%zu LUTs); CMOS baseline cp = %.3f ns\n\n",
              flow.netlist.lut_count(), baseline.critical_path * 1e9);

  TextTable t({"relay Ron", "critical path", "speed-up vs CMOS", "verdict"});
  for (double ron : {2e3, 5e3, 10e3, 25e3, 50e3, 100e3, 200e3}) {
    RelayEquivalent relay = fig11_equivalent();
    relay.ron = ron;
    const ElectricalView view = make_view(
        flow.arch, FpgaVariant::kNemOptimized, 2.0, default_tech22(), relay);
    const auto timing =
        analyze_timing(flow.netlist, flow.packing, flow.placement,
                       flow.graph_view(), flow.routing, view);
    const double speedup = baseline.critical_path / timing.critical_path;
    t.add_row({TextTable::num(ron / 1e3, 0) + " kOhm",
               TextTable::num(timing.critical_path * 1e9, 3) + " ns",
               TextTable::ratio(speedup),
               speedup >= 1.0 ? "OK" : "slower than CMOS"});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\n-> the 2 kOhm contact of [Parsa 10] keeps CMOS-NEM ahead;\n"
              "   the ~100 kOhm contaminated contacts measured on the\n"
              "   crossbar prototypes would erase the speed advantage —\n"
              "   hence the paper's call for encapsulation and consistent\n"
              "   low-Ron contacts at scale.\n");
  return 0;
}
