// Ablation for the paper's Sec 1 reliability argument: NEM relays endure
// ~1e9-class switching cycles — marginal at logic duty, ample for FPGA
// routing, which sees only ~500 reconfigurations over a part's life
// [Kuon 07]. Quantifies the reconfiguration budget of relay-routed FPGAs
// of increasing size and contrasts it with logic-style duty.
#include <cstdio>

#include "arch/arch_model.hpp"
#include "device/reliability.hpp"
#include "util/table.hpp"

using namespace nemfpga;

int main() {
  std::printf("NEM relay endurance vs FPGA reconfiguration needs (Sec 1)\n\n");
  const WearModel m;
  std::printf("endurance model: median %.1e cycles to contact failure, "
              "Weibull shape %.1f\n\n",
              m.median_cycles_to_failure, m.weibull_shape);

  // Relays per FPGA from the tile composition at W=118.
  ArchParams arch;
  arch.W = 118;
  const auto comp = tile_composition(arch);
  std::printf("relays per tile at W=118: %zu (crossbar %zu + CB %zu + SB %zu)\n\n",
              comp.total_routing_switches(), comp.crossbar_switches,
              comp.cb_switches, comp.sb_switches);

  TextTable t({"FPGA size", "routing relays", "reconfig budget (99% yield)",
               "vs ~500 actual"});
  for (std::size_t tiles : {100, 1024, 4096, 16384}) {
    const std::size_t relays = tiles * comp.total_routing_switches();
    const double budget = reconfiguration_budget(m, relays, 0.99);
    t.add_row({std::to_string(tiles) + " tiles", std::to_string(relays),
               TextTable::num(budget, 0),
               TextTable::ratio(budget / 500.0, 0)});
  }
  std::printf("%s\n", t.to_string().c_str());

  std::printf("contrast — survival probability of a 4096-tile fabric:\n");
  const std::size_t relays = 4096 * comp.total_routing_switches();
  TextTable s({"duty", "switching cycles", "P(all relays survive)"});
  const double reconfig_cycles = 500.0 * cycles_per_reconfiguration();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1e", reconfig_cycles);
  s.add_row({"routing (500 reconfigs)", buf,
             TextTable::num(array_survival(m, relays, reconfig_cycles), 6)});
  const double logic_day = 500e6 * 3600.0 * 24 * 0.15;
  std::snprintf(buf, sizeof buf, "%.1e", logic_day);
  s.add_row({"logic @500MHz, 1 day", buf,
             TextTable::num(array_survival(m, relays, logic_day), 6)});
  std::printf("%s", s.to_string().c_str());
  std::printf("\n-> as static routing switches, relays never approach their\n"
              "   endurance limit; as logic they would wear out within a\n"
              "   day — exactly the paper's \"FPGAs are a highly promising\n"
              "   on-ramp for NEM relays\" argument.\n");

  std::printf("\nwear trajectory of the 22 nm device (median behavior):\n");
  TextTable w({"cycles", "Ron multiplier", "stuck?"});
  const RelayDesign d = scaled_relay_22nm();
  for (double c : {1e3, 1e6, 1e8, 1e10}) {
    const auto ws = wear_after(d, m, c);
    std::snprintf(buf, sizeof buf, "%.0e", c);
    w.add_row({buf, TextTable::ratio(ws.ron_multiplier),
               ws.stuck ? "yes" : "no"});
  }
  std::printf("%s", w.to_string().c_str());
  return 0;
}
