// Reproduces paper Fig 2b: measured I-V characteristics of the fabricated
// 3-terminal NEM relay (L = 23 um, h = 500 nm, g0 = 600 nm, tested in oil,
// 100 nA compliance), showing the pull-in / pull-out hysteresis window and
// zero off-state leakage (below the 10 pA noise floor). Also exercises the
// beam-dynamics model for the ">1 ns mechanical switching delay" claim of
// Sec 1 at both device scales.
#include <cstdio>

#include "device/beam_dynamics.hpp"
#include "device/nem_relay.hpp"
#include "util/table.hpp"

using namespace nemfpga;

int main() {
  std::printf("=== Fig 2b: NEM relay I-V hysteresis (fabricated device) ===\n\n");
  const RelayDesign d = fabricated_relay();
  std::printf("device: L=%.1f um  h=%.0f nm  g0=%.0f nm  ambient=%s\n",
              d.geometry.length * 1e6, d.geometry.thickness * 1e9,
              d.geometry.gap * 1e9, d.ambient.name.c_str());
  std::printf("model:  Vpi = %.2f V (paper: 6.2 V measured)\n",
              d.pull_in_voltage());
  std::printf("        Vpo = %.2f V (paper: 2-3.4 V measured)\n",
              d.pull_out_voltage());
  std::printf("        hysteresis window = %.2f V\n\n", d.hysteresis_window());

  TextTable t({"VGS [V]", "IDS up-sweep [A]", "IDS down-sweep [A]"});
  const auto trace = sweep_iv(d, 8.0, 0.5);
  // Split the trace at the turning point.
  std::size_t turn = trace.size();
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].vgs < trace[i - 1].vgs) {
      turn = i;
      break;
    }
  }
  for (std::size_t i = 0; i < turn; ++i) {
    // Find the matching down-sweep point (the sweep apex belongs to both).
    double down = trace[i].ids;
    for (std::size_t j = turn; j < trace.size(); ++j) {
      if (std::abs(trace[j].vgs - trace[i].vgs) < 1e-9) {
        down = trace[j].ids;
        break;
      }
    }
    char up_s[32], down_s[32];
    std::snprintf(up_s, sizeof up_s, "%.2e", trace[i].ids);
    std::snprintf(down_s, sizeof down_s, "%.2e", down);
    t.add_row({TextTable::num(trace[i].vgs, 1), up_s, down_s});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("(off-state current pinned at the 10 pA measurement floor;\n"
              " on-state capped by the 100 nA compliance)\n\n");

  std::printf("=== Sec 1: mechanical switching delay ===\n\n");
  TextTable dyn({"device", "f0 [MHz]", "overdrive", "pull-in delay"});
  for (const auto& [name, dev] :
       {std::pair{"fabricated (23um)", fabricated_relay()},
        std::pair{"scaled 22nm (275nm)", scaled_relay_22nm()}}) {
    for (double od : {1.2, 1.5}) {
      const auto ev =
          simulate_pull_in(dev, od * dev.pull_in_voltage(), 1e-2);
      char delay_s[32];
      std::snprintf(delay_s, sizeof delay_s, "%.3g ns", ev.delay * 1e9);
      dyn.add_row({name, TextTable::num(dev.resonant_frequency() / 1e6, 2),
                   TextTable::num(od, 1) + "x Vpi",
                   ev.switched ? delay_s : "(no pull-in)"});
    }
  }
  std::printf("%s", dyn.to_string().c_str());
  std::printf("\n-> delays far exceed 1 ns: relays are unfit for logic\n"
              "   switching but free for static FPGA routing (Sec 1).\n");
  return 0;
}
