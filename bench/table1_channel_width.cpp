// Reproduces paper Table 1 (architecture parameters) and the Sec 3.3
// channel-width determination: per-circuit minimum channel width Wmin from
// the router, and the "low-stress" operating width W = 1.2 x Wmin [Betz
// 99b]. The paper arrived at W = 118 for its suite; our fabric and
// synthetic workloads land in the same regime (shape, not absolute).
//
// Wmin search costs ~8 routings per circuit, so the default run uses a
// representative subset; set NF_FULL=1 for the entire MCNC-20 suite.
// Circuits run concurrently on the NF_THREADS pool (each flow is
// share-nothing), and the per-circuit Wmin probes themselves are
// speculated in parallel when circuit-level parallelism is idle.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/flow.hpp"
#include "netlist/mcnc.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace nemfpga;

int main() {
  std::printf("Table 1 — FPGA architecture parameters\n\n");
  const ArchParams a;
  TextTable params({"parameter", "description", "value"});
  params.add_row({"N", "LUTs per LB", std::to_string(a.N)});
  params.add_row({"K", "Inputs per LUT", std::to_string(a.K)});
  params.add_row({"L", "Segment wire length", std::to_string(a.L)});
  params.add_row({"Fcin", "LB input pin flexibility", TextTable::num(a.fc_in, 1)});
  params.add_row({"Fcout", "LB output pin flexibility", TextTable::num(a.fc_out, 1)});
  params.add_row({"Fs", "Switch box flexibility", std::to_string(a.fs)});
  params.add_row({"I", "LB input pins (K(N+1)/2)", std::to_string(a.lb_inputs())});
  std::printf("%s\n", params.to_string().c_str());

  const bool full = std::getenv("NF_FULL") != nullptr;
  std::vector<std::string> names;
  if (full) {
    for (const auto& b : mcnc20()) names.push_back(b.name);
  } else {
    names = {"tseng", "ex5p", "alu4", "seq", "frisc", "pdc"};
  }

  std::printf("Sec 3.3 — minimum channel width per circuit (W = 1.2 x Wmin "
              "policy)\n%s",
              full ? "" : "(subset; NF_FULL=1 runs all 20 MCNC circuits)\n");
  std::printf("(%zu circuits across %zu threads; NF_THREADS overrides)\n\n",
              names.size(), ThreadPool::current().thread_count());

  // Warm start: run the smallest circuit first and seed every other
  // search's grow phase with its successful Wmin — circuits of one suite
  // land in the same width regime, so the grow phase collapses to a
  // single probe round. Deterministic at any thread count: the hint
  // depends only on the smallest circuit's (serial) result.
  std::size_t smallest = 0;
  for (std::size_t i = 1; i < names.size(); ++i) {
    if (benchmark_info(names[i]).luts < benchmark_info(names[smallest]).luts) {
      smallest = i;
    }
  }
  auto search = [](const std::string& name, std::size_t w_hint) {
    FlowOptions opt;
    opt.arch.W = 64;  // provisional; only pack/place use it
    return flow_min_channel_width(generate_benchmark(name), opt, w_hint);
  };
  const auto first = search(names[smallest], 48);
  const auto widths = parallel_map(names.size(), [&](std::size_t i) {
    return i == smallest
               ? first
               : search(names[i], first.feasible ? first.w_min : 48);
  });

  TextTable t({"circuit", "4-LUTs", "Wmin", "1.2 x Wmin"});
  std::size_t w_need = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& cw = widths[i];
    if (!cw.feasible) {
      t.add_row({names[i], std::to_string(benchmark_info(names[i]).luts),
                 "infeasible", "-"});
      continue;
    }
    t.add_row({names[i], std::to_string(benchmark_info(names[i]).luts),
               std::to_string(cw.w_min), std::to_string(cw.w_low_stress)});
    w_need = std::max(w_need, cw.w_low_stress);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nsuite operating width (max over circuits): W = %zu\n",
              w_need);
  std::printf("paper's value for its suite with VPR 5.0:    W = 118\n");
  return 0;
}
