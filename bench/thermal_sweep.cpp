// Temperature ablation (motivated by the paper's related work [Wang 11]:
// NEM FPGAs for >500 C): CMOS subthreshold leakage grows exponentially
// with temperature while the relay's electrostatic switching barely moves.
// Re-evaluates the leakage comparison across temperature.
#include <cstdio>

#include "device/thermal.hpp"
#include "util/table.hpp"

using namespace nemfpga;

int main() {
  std::printf("temperature behavior: CMOS leakage vs NEM relay stability\n\n");
  const ThermalModel m;
  const RelayDesign relay = scaled_relay_22nm();

  TextTable t({"T [C]", "CMOS leakage mult.", "relay Vpi drift",
               "relay window [V]", "note"});
  for (double tc : {-40.0, 25.0, 85.0, 125.0, 250.0, 500.0}) {
    const RelayDesign hot = relay_at_temperature(relay, m, tc);
    const char* note = tc <= m.cmos_max_c ? "" : "beyond silicon CMOS";
    char mult[32];
    std::snprintf(mult, sizeof mult, "%.3gx", cmos_leakage_multiplier(m, tc));
    t.add_row({TextTable::num(tc, 0), mult,
               TextTable::num(100.0 * relay_vpi_drift(relay, m, tc), 2) + "%",
               TextTable::num(hot.hysteresis_window(), 3), note});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\n-> the baseline FPGA's leakage advantage of CMOS-NEM "
              "(~10x at 25 C)\n   grows with temperature: every doubling of "
              "CMOS leakage widens it,\n   while the relay's switching window "
              "drifts by only a few percent\n   even far beyond the silicon "
              "operating range.\n");
  return 0;
}
