// Reproduces paper Fig 6: Vpi / Vpo distributions of 100 nominally
// identical relays, the shared half-select programming voltages that still
// configure all of them, and the (small) programming noise margins. Also
// checks the feasibility condition  min{Vpi - Vpo} > Vpi,max - Vpi,min.
#include <cstdio>
#include <cstdlib>

#include "device/variation.hpp"
#include "program/half_select.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

using namespace nemfpga;

int main() {
  std::printf("Fig 6 — Vpi/Vpo distributions for 100 identical relays\n\n");
  Rng rng = Rng::from_string("fig6");
  // Sequential sampler: the 100-relay draw is the calibration anchor the
  // EXPERIMENTS.md Fig 6 record (and the regression tests) pin down.
  const auto pop =
      sample_population(fabricated_relay(), fabricated_variation(), 100, rng);

  Histogram h_vpi(0.0, 7.5, 30), h_vpo(0.0, 7.5, 30);
  RunningStats s_vpi, s_vpo;
  for (const auto& s : pop) {
    h_vpi.add(s.vpi);
    h_vpo.add(s.vpo);
    s_vpi.add(s.vpi);
    s_vpo.add(s.vpo);
  }
  std::printf("%s\n", h_vpi.to_string("Vpi distribution [V]:").c_str());
  std::printf("%s\n", h_vpo.to_string("Vpo distribution [V]:").c_str());
  std::printf("Vpi: mean=%.2f V  sigma=%.2f V  range=[%.2f, %.2f]"
              "  (paper: ~5-7 V)\n",
              s_vpi.mean(), s_vpi.stddev(), s_vpi.min(), s_vpi.max());
  std::printf("Vpo: mean=%.2f V  sigma=%.2f V  range=[%.2f, %.2f]"
              "  (paper: ~2-3.4 V)\n\n",
              s_vpo.mean(), s_vpo.stddev(), s_vpo.min(), s_vpo.max());

  const auto env = envelope(pop);
  std::printf("feasibility: min{Vpi-Vpo} = %.3f V  vs  Vpi,max-Vpi,min = "
              "%.3f V  ->  %s\n",
              env.min_hysteresis, env.vpi_max - env.vpi_min,
              half_select_feasible(env) ? "programmable" : "NOT programmable");

  const auto v = solve_program_window(env);
  if (v) {
    const auto m = noise_margins(env, *v);
    std::printf("\nshared programming voltages (max-min-margin):\n");
    std::printf("  Vhold          = %.3f V\n", v->vhold);
    std::printf("  Vselect        = %.3f V\n", v->vselect);
    std::printf("  Vhold+Vselect  = %.3f V\n", v->vhold + v->vselect);
    std::printf("  Vhold+2Vselect = %.3f V\n", v->vhold + 2 * v->vselect);
    std::printf("\nprogramming noise margins (paper: \"very small\"):\n");
    std::printf("  hold margin        (Vhold - Vpo,max)            = %.3f V\n",
                m.hold);
    std::printf("  half-select margin (Vpi,min - Vhold - Vselect)  = %.3f V\n",
                m.half_select);
    std::printf("  full-select margin (Vhold + 2Vselect - Vpi,max) = %.3f V\n",
                m.full_select);
    std::printf("  worst margin                                    = %.3f V\n",
                m.worst());
  } else {
    std::printf("\nno shared programming window exists for this population\n");
  }

  // FPGA-scale extrapolation of Sec 2.3 ("millions of configurable
  // routing switches"): the envelope of a much larger population, drawn
  // with the parallel per-relay-stream sampler (bit-identical at any
  // NF_THREADS; the draw differs from the 100-relay anchor above).
  const std::size_t big_n = std::getenv("NF_FULL") ? 1000000 : 100000;
  Rng big_rng = Rng::from_string("fig6-scale");
  const auto big = sample_population_parallel(
      fabricated_relay(), fabricated_variation(), big_n, big_rng);
  const auto big_env = envelope(big);
  std::printf("\nFPGA-scale population (%zu relays, %zu threads):\n", big_n,
              ThreadPool::current().thread_count());
  std::printf("  Vpi range [%.2f, %.2f] V, Vpo range [%.2f, %.2f] V\n",
              big_env.vpi_min, big_env.vpi_max, big_env.vpo_min,
              big_env.vpo_max);
  std::printf("  min window %.3f V vs Vpi spread %.3f V -> %s\n",
              big_env.min_hysteresis, big_env.vpi_max - big_env.vpi_min,
              half_select_feasible(big_env) ? "programmable"
                                            : "NOT programmable");

  // Window-widening sensitivity the paper discusses: smaller gmin lowers
  // Vpo (wider window); variation in Vpi shrinks the usable window.
  std::printf("\nwindow levers (Sec 2.3):\n");
  RelayDesign d = fabricated_relay();
  const double w0 = d.hysteresis_window();
  d.geometry.gap_min *= 0.7;
  std::printf("  gmin x0.7 -> window %.2f -> %.2f V (wider)\n", w0,
              d.hysteresis_window());
  RelayDesign d2 = fabricated_relay();
  d2.adhesion_force *= 1.5;
  std::printf("  surface forces x1.5 -> window %.2f -> %.2f V (wider, but\n"
              "  risks stiction)\n", w0, d2.hysteresis_window());
  return 0;
}
