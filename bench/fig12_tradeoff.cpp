// Reproduces paper Fig 12 and the Sec 3.4 headline results: power-speed
// trade-off curves of CMOS-NEM FPGAs versus the CMOS-only baseline across
// the wire-buffer downsizing sweep, for the 20 largest MCNC circuits
// (geometric mean) and the four large [Pistorius 07] benchmarks reported
// individually (ava, oc_des_des3perf, sudoku_check, ucsb_152_tap_fir).
//
//   Fig 12a: dynamic power reduction vs speed-up
//   Fig 12b: leakage power reduction vs speed-up
//   headline: ~10x leakage, ~2x dynamic, ~2x area at no speed penalty;
//             naive CMOS-NEM ([Chen 10b]): ~1.8x area, ~1.3x dyn, ~2x leak.
//
// The full run (24 circuits, largest 17k LUTs) takes several minutes; set
// NF_QUICK=1 to sweep a small subset instead.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/study.hpp"
#include "netlist/mcnc.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace nemfpga;

namespace {

struct SeriesPoint {
  double speedup, dyn, leak, area;
};

struct Series {
  std::string name;
  SeriesPoint naive;
  std::vector<SeriesPoint> sweep;  // parallel to downsizes
  SeriesPoint preferred;
  double preferred_downsize = 1.0;
};

Series study_circuit(const std::string& name, const std::vector<double>& ds) {
  FlowOptions opt;
  opt.arch.W = 118;
  FlowResult flow;
  try {
    flow = run_flow(generate_benchmark(name), opt);
  } catch (const std::exception&) {
    // The largest circuits can exceed W=118 in our fabric; fall back to
    // this circuit's own low-stress width (the comparison stays apples to
    // apples — both fabrics share the mapping).
    opt.place.inner_num = 4.0;  // better placement first
    const auto cw = flow_min_channel_width(generate_benchmark(name), opt, 118);
    if (!cw.feasible) {
      std::fprintf(stderr,
                   "fig12_tradeoff: %s infeasible (grow phase hit the "
                   "W=%zu cap)\n", name.c_str(), cw.w_cap);
      std::exit(1);
    }
    opt.arch.W = std::max<std::size_t>(118, cw.w_low_stress);
    std::printf("    (W=118 unroutable for %s; using its low-stress width "
                "W=%zu)\n", name.c_str(), opt.arch.W);
    flow = run_flow(generate_benchmark(name), opt);
  }
  const auto st = run_study(flow, ds);
  Series s;
  s.name = name;
  auto pt = [](const SweepPoint& p) {
    return SeriesPoint{p.vs.speedup, p.vs.dynamic_reduction,
                       p.vs.leakage_reduction, p.vs.area_reduction};
  };
  s.naive = pt(st.naive);
  for (const auto& p : st.sweep) s.sweep.push_back(pt(p));
  s.preferred = pt(st.preferred);
  s.preferred_downsize = st.preferred.downsize;
  return s;
}

Series geomean_series(const std::vector<Series>& all,
                      const std::vector<double>& ds) {
  Series g;
  g.name = "MCNC-20 (geomean)";
  auto gm = [&](auto get) {
    std::vector<double> v;
    for (const auto& s : all) v.push_back(get(s));
    return geometric_mean(v);
  };
  g.naive = {gm([](const Series& s) { return s.naive.speedup; }),
             gm([](const Series& s) { return s.naive.dyn; }),
             gm([](const Series& s) { return s.naive.leak; }),
             gm([](const Series& s) { return s.naive.area; })};
  for (std::size_t i = 0; i < ds.size(); ++i) {
    g.sweep.push_back(
        {gm([i](const Series& s) { return s.sweep[i].speedup; }),
         gm([i](const Series& s) { return s.sweep[i].dyn; }),
         gm([i](const Series& s) { return s.sweep[i].leak; }),
         gm([i](const Series& s) { return s.sweep[i].area; })});
  }
  // Preferred corner of the mean series: deepest point at speedup >= 1.
  g.preferred = g.sweep.front();
  for (const auto& p : g.sweep) {
    if (p.speedup >= 0.999) g.preferred = p;
  }
  return g;
}

void print_series(const Series& s, const std::vector<double>& ds) {
  std::printf("\n--- %s ---\n", s.name.c_str());
  TextTable t({"point", "speed-up", "dyn power red.", "leakage red.",
               "area red."});
  t.add_row({"naive CMOS-NEM [Chen 10b]", TextTable::ratio(s.naive.speedup),
             TextTable::ratio(s.naive.dyn), TextTable::ratio(s.naive.leak),
             TextTable::ratio(s.naive.area)});
  for (std::size_t i = 0; i < s.sweep.size(); ++i) {
    t.add_row({"downsize " + TextTable::num(ds[i], 1) + "x",
               TextTable::ratio(s.sweep[i].speedup),
               TextTable::ratio(s.sweep[i].dyn),
               TextTable::ratio(s.sweep[i].leak),
               TextTable::ratio(s.sweep[i].area)});
  }
  std::printf("%s", t.to_string().c_str());
}

}  // namespace

int main() {
  const bool quick = std::getenv("NF_QUICK") != nullptr;
  const auto ds = default_downsizes();

  std::vector<std::string> mcnc_names;
  if (quick) {
    mcnc_names = {"tseng", "ex5p", "alu4", "seq"};
  } else {
    for (const auto& b : mcnc20()) mcnc_names.push_back(b.name);
  }
  std::vector<std::string> large_names;
  if (!quick) {
    for (const auto& b : pistorius_large()) large_names.push_back(b.name);
  }

  std::printf("Fig 12 — CMOS-NEM vs CMOS-only power-speed trade-offs "
              "(W=118, 22 nm)%s\n",
              quick ? "  [NF_QUICK subset]" : "");

  std::vector<Series> mcnc;
  for (const auto& n : mcnc_names) {
    std::printf("  mapping %s ...\n", n.c_str());
    std::fflush(stdout);
    mcnc.push_back(study_circuit(n, ds));
  }
  std::vector<Series> large;
  for (const auto& n : large_names) {
    std::printf("  mapping %s ...\n", n.c_str());
    std::fflush(stdout);
    large.push_back(study_circuit(n, ds));
  }

  const Series mean = geomean_series(mcnc, ds);
  print_series(mean, ds);
  for (const auto& s : large) print_series(s, ds);

  std::printf("\n=== headline comparison (Sec 3.4 / abstract) ===\n");
  TextTable h({"metric", "model (geomean preferred corner)", "paper"});
  h.add_row({"speed penalty",
             mean.preferred.speedup >= 0.999 ? "none" : "yes", "none"});
  h.add_row({"dynamic power reduction", TextTable::ratio(mean.preferred.dyn),
             "~2x"});
  h.add_row({"leakage power reduction", TextTable::ratio(mean.preferred.leak),
             "~10x"});
  h.add_row({"area reduction", TextTable::ratio(mean.preferred.area),
             "~2x (2.1x)"});
  h.add_row({"naive CMOS-NEM dyn / leak / area",
             TextTable::ratio(mean.naive.dyn) + " / " +
                 TextTable::ratio(mean.naive.leak) + " / " +
                 TextTable::ratio(mean.naive.area),
             "1.3x / 2x / 1.8x"});
  std::printf("%s", h.to_string().c_str());
  return 0;
}
