// Configuration-compiler bench: from the routed design to the physical
// relay bitstream and the half-select programming plan — connecting the
// paper's architecture study (Sec 3) back to its programming demonstration
// (Sec 2). Reports relay utilization, the pin-assignment quality of the
// pooled-pin routing model, and full-chip configuration time/energy with
// the 22 nm device of Fig 11.
#include <cstdio>

#include "config/bitstream.hpp"
#include "netlist/mcnc.hpp"
#include "util/table.hpp"

using namespace nemfpga;

int main() {
  std::printf("bitstream + half-select programming plan (W = 118, 22 nm "
              "relays)\n\n");

  TextTable t({"circuit", "relays on", "total relays", "util.",
               "pin conflicts", "config time", "line energy"});
  for (const char* name : {"tseng", "alu4", "seq"}) {
    FlowOptions opt;
    opt.arch.W = 118;
    const auto flow = run_flow(generate_benchmark(name), opt);
    const auto bs = generate_bitstream(flow);
    const auto plan = plan_programming(flow, bs);
    char conflicts[48];
    std::snprintf(conflicts, sizeof conflicts, "%zu/%zu (%.1f%%)",
                  bs.pins.conflicted_sinks, bs.pins.total_sinks,
                  100.0 * bs.pins.conflict_fraction());
    t.add_row({name, std::to_string(bs.relays_on),
               std::to_string(bs.relays_total),
               TextTable::num(100.0 * bs.utilization(), 2) + "%", conflicts,
               TextTable::num(plan.total_time * 1e6, 1) + " us",
               TextTable::num(plan.line_energy * 1e9, 2) + " nJ"});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Show the plan parameters once.
  FlowOptions opt;
  opt.arch.W = 118;
  const auto flow = run_flow(generate_benchmark("tseng"), opt);
  const auto bs = generate_bitstream(flow);
  const auto plan = plan_programming(flow, bs);
  std::printf("plan details (tseng):\n");
  std::printf("  voltages      : Vhold=%.3f V, Vselect=%.3f V (Sec 2.2 "
              "constraints)\n", plan.voltages.vhold, plan.voltages.vselect);
  std::printf("  row steps     : %zu (crossbar + CB + SB arrays, all tiles "
              "in parallel)\n", plan.row_steps);
  std::printf("  step time     : %.1f ns (10x mechanical pull-in settle)\n",
              plan.step_time * 1e9);
  std::printf("  total config  : %.1f us\n", plan.total_time * 1e6);
  std::printf("\n-> full-chip configuration completes in microseconds —\n"
              "   the >1 ns mechanical delay is irrelevant at ~500\n"
              "   reconfigurations per lifetime (Sec 1), and zero SRAM\n"
              "   cells are involved (Fig 3b).\n");
  return 0;
}
