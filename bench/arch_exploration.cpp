// Ablation / future-work probe (paper Sec 5: "Exploration of new FPGA
// architectures that utilize unique properties of NEM relays"): sweep the
// segment wire length L and the cluster size N around the paper's Table 1
// operating point and compare how much each architecture gains from the
// CMOS-NEM technique. Longer segments shift delay/power into the wire
// buffers the technique attacks; the relay fabric also tolerates longer
// unbuffered spans thanks to its low-Ron full-swing switches.
#include <cstdio>

#include "core/study.hpp"
#include "netlist/mcnc.hpp"
#include "util/table.hpp"

using namespace nemfpga;

int main() {
  std::printf("architecture exploration — CMOS-NEM gains vs (L, N) "
              "around Table 1\n(circuit: tseng, W = 118)\n\n");

  TextTable t({"L", "N", "Wmin", "baseline cp", "NEM speed-up", "dyn red.",
               "leak red.", "area red."});
  // Wmin warm start: adjacent sweep points have similar routability, so
  // each point's search is seeded with the previous point's Wmin — the
  // grow phase usually needs a single probe round.
  std::size_t w_hint = 48;
  for (std::size_t L : {2, 4, 8}) {
    for (std::size_t N : {6, 10}) {
      FlowOptions opt;
      opt.arch.W = 118;
      opt.arch.L = L;
      opt.arch.N = N;
      try {
        const auto cw =
            flow_min_channel_width(generate_benchmark("tseng"), opt, w_hint);
        if (!cw.feasible) {
          t.add_row({std::to_string(L), std::to_string(N), "-", "infeasible",
                     "-", "-", "-", "-"});
          continue;
        }
        w_hint = cw.w_min;
        const auto flow = run_flow(generate_benchmark("tseng"), opt);
        const auto st = run_study(flow);
        t.add_row({std::to_string(L), std::to_string(N),
                   std::to_string(cw.w_min),
                   TextTable::num(st.baseline.critical_path * 1e9, 2) + " ns",
                   TextTable::ratio(st.preferred.vs.speedup),
                   TextTable::ratio(st.preferred.vs.dynamic_reduction),
                   TextTable::ratio(st.preferred.vs.leakage_reduction),
                   TextTable::ratio(st.preferred.vs.area_reduction)});
      } catch (const std::exception& e) {
        t.add_row({std::to_string(L), std::to_string(N), "-", "unroutable",
                   "-", "-", "-", "-"});
      }
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\n(Table 1 operating point is L=4, N=10; the relative gains\n"
              " of the buffer technique persist across the neighborhood.)\n");
  return 0;
}
