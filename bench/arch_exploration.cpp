// Architecture-exploration study (paper Sec 5: "Exploration of new FPGA
// architectures that utilize unique properties of NEM relays"): sweep
// every registered switch-technology backend across switch-block
// patterns and fabric knobs (segment length L, input flexibility Fc),
// mapping the circuit once per fabric and re-evaluating it electrically
// per backend — the paper's methodology, widened from {CMOS, NEM} to the
// whole registry. Emits BENCH_arch.json (schema nemfpga-arch-bench-1)
// for tools/bench_check.py: every metric below is a deterministic
// function of the (circuit, fabric, backend) triple, so any drift
// between same-configuration runs is a correctness bug, not noise.
//
//   arch_exploration [--out FILE] [--circuit NAME] [--smoke]
//                    [--backends a,b,c] [--sb-patterns a,b]
//                    [--seg-lengths 2,4,8] [--fc-in 0.2,0.4]
//                    [--w N] [--downsize F]
//
// --backends / --sb-patterns take registry names (device/switch_tech.hpp
// and arch/params.hpp); an unknown name is rejected listing the
// registered choices. --downsize applies only to backends whose buffer
// policy supports wire-buffer downsizing (e.g. nem-opt); the others
// evaluate at the neutral 1.0. The NEM-vs-CMOS paper slice (Table 2's
// reduction column) is recomputed at the Table 1 operating point and
// reported both in the table and the JSON.
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/study.hpp"
#include "device/switch_tech.hpp"
#include "netlist/mcnc.hpp"
#include "netlist/synth_gen.hpp"
#include "util/table.hpp"

using namespace nemfpga;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---- strict flag parsing (route_perf.cpp convention) --------------------

[[noreturn]] void flag_error(const char* flag, const std::string& tok,
                             const std::string& hint = "") {
  std::fprintf(stderr, "arch_exploration: bad value for %s: '%s'%s\n", flag,
               tok.c_str(), hint.c_str());
  std::exit(2);
}

const char* flag_operand(const char* flag, int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "arch_exploration: missing value for %s\n", flag);
    std::exit(2);
  }
  return argv[++i];
}

std::vector<std::string> split_list(const char* tok) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = tok; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += *p;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::vector<std::string> parse_backends_flag(const char* flag, int argc,
                                             char** argv, int& i) {
  const char* tok = flag_operand(flag, argc, argv, i);
  std::vector<std::string> out;
  for (const std::string& name : split_list(tok)) {
    if (!switch_technology_registered(name)) {
      flag_error(flag, name,
                 " (registered: " + registered_switch_technology_names() +
                     ")");
    }
    out.push_back(std::string(switch_technology(name).name()));
  }
  if (out.empty()) flag_error(flag, tok);
  return out;
}

std::vector<SbPattern> parse_patterns_flag(const char* flag, int argc,
                                           char** argv, int& i) {
  const char* tok = flag_operand(flag, argc, argv, i);
  std::vector<SbPattern> out;
  for (const std::string& name : split_list(tok)) {
    try {
      out.push_back(sb_pattern_from_name(name));
    } catch (const std::invalid_argument&) {
      flag_error(flag, name, " (recognized: " + sb_pattern_names() + ")");
    }
  }
  if (out.empty()) flag_error(flag, tok);
  return out;
}

std::size_t parse_one_size(const char* flag, const std::string& tok) {
  if (tok.empty() || tok.size() > 19) flag_error(flag, tok);
  std::size_t v = 0;
  for (char ch : tok) {
    if (!std::isdigit(static_cast<unsigned char>(ch))) flag_error(flag, tok);
    v = v * 10 + static_cast<std::size_t>(ch - '0');
  }
  return v;
}

std::size_t parse_size_flag(const char* flag, int argc, char** argv,
                            int& i) {
  return parse_one_size(flag, flag_operand(flag, argc, argv, i));
}

std::vector<std::size_t> parse_size_list_flag(const char* flag, int argc,
                                              char** argv, int& i) {
  const char* tok = flag_operand(flag, argc, argv, i);
  std::vector<std::size_t> out;
  for (const std::string& s : split_list(tok)) {
    out.push_back(parse_one_size(flag, s));
  }
  if (out.empty()) flag_error(flag, tok);
  return out;
}

double parse_one_double(const char* flag, const std::string& tok) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(v)) {
    flag_error(flag, tok);
  }
  return v;
}

double parse_double_flag(const char* flag, int argc, char** argv, int& i) {
  return parse_one_double(flag, flag_operand(flag, argc, argv, i));
}

std::vector<double> parse_double_list_flag(const char* flag, int argc,
                                           char** argv, int& i) {
  const char* tok = flag_operand(flag, argc, argv, i);
  std::vector<double> out;
  for (const std::string& s : split_list(tok)) {
    out.push_back(parse_one_double(flag, s));
  }
  if (out.empty()) flag_error(flag, tok);
  return out;
}

// -------------------------------------------------------------------------

std::uint64_t routing_checksum(const RoutingResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& t : r.trees) {
    mix(t.source);
    mix(t.edges.size());
    for (const auto& [from, to] : t.edges) {
      mix((static_cast<std::uint64_t>(from) << 32) | to);
    }
    for (RrNodeId s : t.sinks) mix(s);
  }
  return h;
}

struct FabricPoint {
  SbPattern pattern = SbPattern::kWilton;
  std::size_t L = 4;
  double fc_in = 0.2;
};

struct Entry {
  std::string name;  ///< "backend/pattern/L4/fc0.2" — the bench_check key.
  std::string backend;
  std::string sb_pattern;
  std::size_t seg_len = 0;
  double fc_in = 0.0;
  double downsize = 1.0;
  bool routed = false;
  std::uint64_t tree_checksum = 0;
  double critical_path_s = 0.0;
  double dynamic_w = 0.0;
  double leakage_w = 0.0;
  double area_m2 = 0.0;
  double wall_s = 0.0;
};

std::string fmt_fc(double fc) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", fc);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out = "BENCH_arch.json";
  std::string circuit = "tseng";
  bool smoke = false;
  std::vector<std::string> backends = {"cmos", "nem-naive", "nem-opt",
                                       "rram"};
  std::vector<SbPattern> patterns = {SbPattern::kWilton, SbPattern::kSubset,
                                     SbPattern::kUniversal};
  std::vector<std::size_t> seg_lengths = {2, 4, 8};
  std::vector<double> fc_ins = {0.2, 0.4};
  std::size_t w = 118;
  double downsize = 4.0;

  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out")) {
      out = flag_operand("--out", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--circuit")) {
      circuit = flag_operand("--circuit", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--smoke")) {
      smoke = true;
    } else if (!std::strcmp(argv[i], "--backends")) {
      backends = parse_backends_flag("--backends", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--sb-patterns")) {
      patterns = parse_patterns_flag("--sb-patterns", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--seg-lengths")) {
      seg_lengths = parse_size_list_flag("--seg-lengths", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--fc-in")) {
      fc_ins = parse_double_list_flag("--fc-in", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--w")) {
      w = parse_size_flag("--w", argc, argv, i);
    } else if (!std::strcmp(argv[i], "--downsize")) {
      downsize = parse_double_flag("--downsize", argc, argv, i);
    } else {
      std::fprintf(stderr,
                   "arch_exploration: unknown flag '%s'\n"
                   "usage: arch_exploration [--out FILE] [--circuit NAME] "
                   "[--smoke] [--backends a,b,c] [--sb-patterns a,b] "
                   "[--seg-lengths 2,4,8] [--fc-in 0.2,0.4] [--w N] "
                   "[--downsize F]\n",
                   argv[i]);
      return 2;
    }
  }

  if (smoke) {
    circuit = "smoke";
    patterns = {SbPattern::kWilton, SbPattern::kSubset};
    seg_lengths = {2};
    fc_ins = {0.2};
    w = 24;
  }

  auto make_circuit = [&] {
    if (circuit == "smoke") {
      SynthSpec s;
      s.name = "smoke";
      s.n_luts = 120;
      s.n_inputs = 16;
      s.n_outputs = 16;
      return generate_netlist(s);
    }
    return generate_benchmark(circuit);
  };

  std::printf("architecture exploration — %zu backends x %zu patterns x "
              "fabric knobs\n(circuit: %s, W = %zu, downsize %g where "
              "supported)\n\n",
              backends.size(), patterns.size(), circuit.c_str(), w,
              downsize);

  // Fabric points: the L sweep at the first Fc, plus the Fc sweep at the
  // Table 1 segment length — the paper's neighborhood, not a full grid.
  std::vector<FabricPoint> points;
  for (SbPattern p : patterns) {
    for (std::size_t L : seg_lengths) {
      points.push_back({p, L, fc_ins.front()});
    }
    for (std::size_t k = 1; k < fc_ins.size(); ++k) {
      points.push_back({p, 4, fc_ins[k]});
    }
  }

  TextTable t({"pattern", "L", "fc_in", "backend", "cp", "dyn", "leak",
               "area"});
  std::vector<Entry> entries;
  const double t_start = now_s();
  for (const FabricPoint& pt : points) {
    FlowOptions opt;
    opt.arch.W = w;
    opt.arch.L = pt.L;
    opt.arch.fc_in = pt.fc_in;
    opt.arch.sb_pattern = pt.pattern;
    const std::string fabric = std::string(sb_pattern_name(pt.pattern)) +
                               "/L" + std::to_string(pt.L) + "/fc" +
                               fmt_fc(pt.fc_in);

    bool routed = false;
    FlowResult flow;
    std::uint64_t checksum = 0;
    const double t_fabric = now_s();
    try {
      flow = run_flow(make_circuit(), opt);
      routed = true;
      checksum = routing_checksum(flow.routing);
    } catch (const std::exception&) {
      // Unroutable fabric: still reported (the verdict is a correctness
      // field — a fabric flipping routability is a routing bug).
    }
    const double map_wall = now_s() - t_fabric;

    for (const std::string& backend : backends) {
      Entry e;
      e.name = backend + "/" + fabric;
      e.backend = backend;
      e.sb_pattern = sb_pattern_name(pt.pattern);
      e.seg_len = pt.L;
      e.fc_in = pt.fc_in;
      const bool can_downsize =
          switch_technology(backend).buffer_policy().supports_wire_downsize;
      e.downsize = can_downsize ? downsize : 1.0;
      e.routed = routed;
      e.tree_checksum = checksum;
      if (routed) {
        const double t0 = now_s();
        const VariantMetrics m = evaluate_backend(flow, backend, e.downsize);
        e.critical_path_s = m.critical_path;
        e.dynamic_w = m.dynamic_power;
        e.leakage_w = m.leakage_power;
        e.area_m2 = m.area;
        e.wall_s = (now_s() - t0) + map_wall / double(backends.size());
        t.add_row({std::string(e.sb_pattern), std::to_string(e.seg_len),
                   fmt_fc(e.fc_in), backend,
                   TextTable::num(m.critical_path * 1e9, 2) + " ns",
                   TextTable::num(m.dynamic_power * 1e3, 3) + " mW",
                   TextTable::num(m.leakage_power * 1e6, 2) + " uW",
                   TextTable::num(m.area * 1e6, 3) + " mm2"});
      } else {
        t.add_row({std::string(e.sb_pattern), std::to_string(e.seg_len),
                   fmt_fc(e.fc_in), backend, "unroutable", "-", "-", "-"});
      }
      entries.push_back(std::move(e));
    }
  }
  std::printf("%s\n", t.to_string().c_str());

  // NEM-vs-CMOS paper slice at the Table 1 operating point (Wilton, the
  // first fabric point): the preferred-corner reduction column.
  bool slice_ok = false;
  VersusBaseline slice{};
  double slice_downsize = 1.0;
  {
    FlowOptions opt;
    opt.arch.W = w;
    opt.arch.L = smoke ? seg_lengths.front() : 4;
    try {
      const auto flow = run_flow(make_circuit(), opt);
      const StudyResult st = run_study(flow);
      slice = st.preferred.vs;
      slice_downsize = st.preferred.downsize;
      slice_ok = true;
      std::printf(
          "NEM-vs-CMOS paper slice (Wilton, L=%zu, downsize %gx):\n"
          "  speedup %.2fx  dynamic %.2fx  leakage %.2fx  area %.2fx\n",
          opt.arch.L, slice_downsize, slice.speedup,
          slice.dynamic_reduction, slice.leakage_reduction,
          slice.area_reduction);
    } catch (const std::exception& e) {
      std::printf("paper slice unavailable: %s\n", e.what());
    }
  }
  const double total_wall = now_s() - t_start;

  FILE* f = std::fopen(out, "w");
  if (!f) {
    std::fprintf(stderr, "arch_exploration: cannot open %s\n", out);
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"nemfpga-arch-bench-1\",\n");
  std::fprintf(f, "  \"benchmark\": \"%s\",\n", circuit.c_str());
  std::fprintf(f, "  \"w\": %zu,\n", w);
  std::fprintf(f, "  \"downsize\": %.17g,\n", downsize);
  std::fprintf(f, "  \"total_wall_s\": %.6f,\n", total_wall);
  if (slice_ok) {
    std::fprintf(f,
                 "  \"paper_slice\": {\n"
                 "    \"downsize\": %.17g,\n"
                 "    \"speedup\": %.17g,\n"
                 "    \"dynamic_reduction\": %.17g,\n"
                 "    \"leakage_reduction\": %.17g,\n"
                 "    \"area_reduction\": %.17g\n  },\n",
                 slice_downsize, slice.speedup, slice.dynamic_reduction,
                 slice.leakage_reduction, slice.area_reduction);
  }
  std::fprintf(f, "  \"circuits\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", e.name.c_str());
    std::fprintf(f, "      \"backend\": \"%s\",\n", e.backend.c_str());
    std::fprintf(f, "      \"sb_pattern\": \"%s\",\n", e.sb_pattern.c_str());
    std::fprintf(f, "      \"seg_len\": %zu,\n", e.seg_len);
    std::fprintf(f, "      \"fc_in\": %.17g,\n", e.fc_in);
    std::fprintf(f, "      \"downsize\": %.17g,\n", e.downsize);
    std::fprintf(f, "      \"routed\": %s,\n", e.routed ? "true" : "false");
    std::fprintf(f, "      \"tree_checksum\": \"%016llx\",\n",
                 static_cast<unsigned long long>(e.tree_checksum));
    std::fprintf(f, "      \"critical_path_s\": %.17g,\n",
                 e.critical_path_s);
    std::fprintf(f, "      \"dynamic_w\": %.17g,\n", e.dynamic_w);
    std::fprintf(f, "      \"leakage_w\": %.17g,\n", e.leakage_w);
    std::fprintf(f, "      \"area_m2\": %.17g,\n", e.area_m2);
    std::fprintf(f, "      \"wall_s\": %.6f\n", e.wall_s);
    std::fprintf(f, "    }%s\n", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu entries)\n", out, entries.size());
  return 0;
}
