// Example: programming NEM relay crossbars with the half-select scheme.
// Shows (1) the voltage-window derivation from a varied relay population,
// (2) row-by-row programming of an 8x8 array to an arbitrary pattern, and
// (3) reprogramming — the hysteresis window is the configuration memory,
// no SRAM involved.
#include <cstdio>
#include <string>

#include "program/half_select.hpp"
#include "util/rng.hpp"

using namespace nemfpga;

namespace {

void show(const char* title, const CrossbarPattern& p) {
  std::printf("%s\n", title);
  for (std::size_t r = 0; r < p.rows(); ++r) {
    std::printf("  ");
    for (std::size_t c = 0; c < p.cols(); ++c) {
      std::printf("%c ", p.at(r, c) ? 'X' : '.');
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // A realistic fabricated population: 64 relays with dimensional
  // variation, as measured across the paper's 4-inch wafer.
  Rng rng = Rng::from_string("crossbar-example");
  const auto pop =
      sample_population(fabricated_relay(), fabricated_variation(), 64, rng);
  const auto env = envelope(pop);
  std::printf("population: Vpi in [%.2f, %.2f] V, Vpo,max = %.2f V\n",
              env.vpi_min, env.vpi_max, env.vpo_max);

  const auto v = solve_program_window(env);
  if (!v) {
    std::printf("variation too large: no shared programming window.\n");
    return 1;
  }
  std::printf("programming levels: Vhold = %.2f V, Vselect = %.2f V\n",
              v->vhold, v->vselect);
  const auto m = noise_margins(env, *v);
  std::printf("worst noise margin: %.3f V\n\n", m.worst());

  RelayCrossbar xbar(8, 8, pop);

  // Pattern 1: a diagonal routing configuration.
  CrossbarPattern diag(8, 8);
  for (std::size_t i = 0; i < 8; ++i) diag.set(i, i, true);
  const auto got1 = program_half_select(xbar, diag, *v);
  show("programmed (diagonal):", got1);
  std::printf("correct: %s\n\n", got1 == diag ? "YES" : "NO");

  // Pattern 2: reprogram in place — a denser arbitrary configuration.
  CrossbarPattern dense(8, 8);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) dense.set(r, c, (r * 3 + c) % 4 == 0);
  }
  const auto got2 = program_half_select(xbar, dense, *v);
  show("reprogrammed (dense):", got2);
  std::printf("correct: %s\n\n", got2 == dense ? "YES" : "NO");

  // Retention: the hold bias keeps every state inside the hysteresis
  // window indefinitely — this is the SRAM-free configuration memory.
  xbar.apply_bias(std::vector<double>(8, v->vhold), std::vector<double>(8, 0.0));
  std::printf("after extended hold bias, configuration retained: %s\n",
              xbar.state() == dense ? "YES" : "NO");

  // Reset: all gates to 0 releases everything.
  xbar.reset();
  std::printf("after reset, all relays released: %s\n",
              xbar.state() == CrossbarPattern(8, 8) ? "YES" : "NO");
  return 0;
}
