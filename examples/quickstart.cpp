// Quickstart: map a small circuit through the full CAD flow and compare a
// CMOS-only FPGA against a CMOS-NEM FPGA with the paper's selective buffer
// removal / downsizing technique.
//
//   $ ./quickstart
//
// Walks through: synthetic netlist -> pack -> place -> route -> timing &
// power under both fabrics -> comparison report.
#include <cstdio>

#include "core/study.hpp"
#include "netlist/synth_gen.hpp"
#include "util/table.hpp"

using namespace nemfpga;

int main() {
  // 1. A workload: a 600-LUT mapped netlist with some registers.
  SynthSpec spec;
  spec.name = "quickstart";
  spec.n_luts = 600;
  spec.n_inputs = 24;
  spec.n_outputs = 18;
  spec.n_latches = 120;
  Netlist netlist = generate_netlist(spec);
  std::printf("netlist: %zu LUTs, %zu FFs, %zu nets\n", netlist.lut_count(),
              netlist.latch_count(), netlist.net_count());

  // 2. The island-style architecture of the paper (Table 1), W = 118.
  FlowOptions opt;
  opt.arch.W = 118;

  // 3. Pack -> place -> route once; both fabrics share this mapping.
  const FlowResult flow = run_flow(std::move(netlist), opt);
  std::printf("mapped:  %zu logic blocks on a %zux%zu grid, %zu routed nets "
              "(%zu wire segments)\n\n",
              flow.packing.clusters.size(), flow.placement.nx,
              flow.placement.ny, flow.placement.nets.size(),
              flow.routing.wire_segments_used);

  // 4. Evaluate the baseline and the CMOS-NEM design points.
  const StudyResult st = run_study(flow);

  TextTable t({"design", "critical path", "dynamic", "leakage", "area"});
  auto row = [&](const char* name, const VariantMetrics& m) {
    t.add_row({name, TextTable::num(m.critical_path * 1e9, 2) + " ns",
               TextTable::num(m.dynamic_power * 1e3, 3) + " mW",
               TextTable::num(m.leakage_power * 1e3, 3) + " mW",
               TextTable::num(m.area * 1e6, 4) + " mm2"});
  };
  row("CMOS-only baseline", st.baseline);
  row("CMOS-NEM, naive [Chen 10b]", st.naive.metrics);
  row("CMOS-NEM + buffer technique", st.preferred.metrics);
  std::printf("%s\n", t.to_string().c_str());

  const auto& p = st.preferred.vs;
  std::printf("CMOS-NEM + technique vs baseline (downsize %.1fx):\n",
              st.preferred.downsize);
  std::printf("  speed-up             : %.2fx (no speed penalty: %s)\n",
              p.speedup, p.speedup >= 1.0 ? "yes" : "no");
  std::printf("  dynamic power        : %.2fx lower\n", p.dynamic_reduction);
  std::printf("  leakage power        : %.2fx lower\n", p.leakage_reduction);
  std::printf("  footprint area       : %.2fx smaller\n", p.area_reduction);
  return 0;
}
