// Example: Monte-Carlo programming-yield study. "Today's FPGAs typically
// contain millions of configurable routing switches. As a result, large
// variations can make it impossible to correctly configure all NEM relays"
// (Sec 2.3). Sweeps array size and process-variation severity and reports
// the fraction of arrays that can be fully half-select programmed, under
// both wafer-wide fixed voltages and per-array calibrated voltages.
#include <cstdio>

#include "program/yield.hpp"
#include "util/table.hpp"

using namespace nemfpga;

int main() {
  std::printf("NEM relay crossbar programming yield vs variation\n\n");
  const RelayDesign nominal = fabricated_relay();
  const std::size_t trials = 200;

  for (double sigma_mult : {0.5, 1.0, 1.5, 2.0}) {
    VariationSpec spec = fabricated_variation();
    spec.sigma_length_rel *= sigma_mult;
    spec.sigma_thickness_rel *= sigma_mult;
    spec.sigma_gap_rel *= sigma_mult;
    spec.sigma_gap_min_rel *= sigma_mult;

    std::printf("variation severity %.1fx (sigma_h = %.1f%%):\n", sigma_mult,
                100.0 * spec.sigma_thickness_rel);
    TextTable t({"array", "relays", "yield (fixed V)", "yield (calibrated V)",
                 "margin [V]"});
    for (std::size_t n : {4, 8, 16, 32}) {
      Rng rng_f(1000 + n), rng_c(1000 + n);
      const auto fixed = programming_yield(nominal, spec, n, n, trials, rng_f,
                                           VoltagePolicy::kFixedNominal);
      const auto cal = programming_yield(nominal, spec, n, n, trials, rng_c,
                                         VoltagePolicy::kPerArrayCalibrated);
      t.add_row({std::to_string(n) + "x" + std::to_string(n),
                 std::to_string(n * n),
                 TextTable::num(100.0 * fixed.yield(), 1) + "%",
                 TextTable::num(100.0 * cal.yield(), 1) + "%",
                 TextTable::num(cal.mean_worst_margin, 3)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  std::printf("-> larger arrays and larger variation both squeeze the\n"
              "   programming window; per-array calibration helps but the\n"
              "   paper's conclusion stands: Vpi variation must be\n"
              "   minimized and the hysteresis window maximized.\n");
  return 0;
}
