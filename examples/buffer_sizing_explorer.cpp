// Example: explore the paper's wire-buffer downsizing trade-off on one
// benchmark circuit. For each pretend-load factor, report the sized chain,
// the per-stage wire delay, and the application-level consequences.
#include <cstdio>

#include "core/study.hpp"
#include "netlist/mcnc.hpp"
#include "util/table.hpp"

using namespace nemfpga;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "tseng";
  std::printf("buffer sizing explorer — circuit '%s', W = 118\n\n",
              name.c_str());

  FlowOptions opt;
  opt.arch.W = 118;
  const FlowResult flow = run_flow(generate_benchmark(name), opt);
  const auto baseline = evaluate_variant(flow, FpgaVariant::kCmosBaseline);
  std::printf("CMOS-only baseline: cp = %.2f ns  (wire stage %.1f ps)\n\n",
              baseline.critical_path * 1e9,
              make_view(flow.arch, FpgaVariant::kCmosBaseline).t_wire_stage *
                  1e12);

  PowerOptions iso;
  iso.frequency = 1.0 / baseline.critical_path;

  TextTable t({"downsize", "chain stages", "total width", "wire stage",
               "app. critical path", "speed-up", "leakage red."});
  for (double d : {1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0}) {
    const auto view = make_view(flow.arch, FpgaVariant::kNemOptimized, d);
    const auto m = evaluate_variant(flow, FpgaVariant::kNemOptimized, d, iso);
    double width = 0.0;
    for (double w : view.wire_buffer.chain.stage_mults) width += w;
    t.add_row({TextTable::num(d, 1) + "x",
               std::to_string(view.wire_buffer.chain.stages()),
               TextTable::num(width, 1) + " min-inv",
               TextTable::num(view.t_wire_stage * 1e12, 1) + " ps",
               TextTable::num(m.critical_path * 1e9, 2) + " ns",
               TextTable::ratio(baseline.critical_path / m.critical_path),
               TextTable::ratio(baseline.leakage_power / m.leakage_power)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nthe paper's move: design each chain for a pretend load up to 8x\n"
      "smaller than the real segment load, then pick the deepest downsizing\n"
      "that still meets the CMOS baseline's application speed (Sec 3.4).\n");
  return 0;
}
