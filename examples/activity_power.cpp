// Example: simulation-based switching activities in the power analysis.
// The paper's power flow "incorporates appropriate switching activities of
// various circuit nodes" ([Jamieson 09]); this example contrasts a flat
// activity factor with per-net activities measured by logic simulation of
// the mapped netlist's LUT truth tables.
#include <cstdio>

#include "core/study.hpp"
#include "netlist/simulate.hpp"
#include "netlist/synth_gen.hpp"
#include "util/table.hpp"

using namespace nemfpga;

int main() {
  SynthSpec spec;
  spec.name = "activity-example";
  spec.n_luts = 500;
  spec.n_inputs = 24;
  spec.n_outputs = 16;
  spec.n_latches = 100;
  Netlist netlist = generate_netlist(spec);

  // Simulate 2000 random vectors to measure per-net transition rates.
  ActivityOptions aopt;
  aopt.vectors = 2000;
  const ActivityResult act = estimate_activity(netlist, aopt);
  std::printf("simulated %zu vectors: mean net activity = %.3f "
              "transitions/cycle\n",
              aopt.vectors, act.mean_activity);

  // Show the spread: logic depth attenuates toggling.
  double hi = 0.0, lo = 1.0;
  for (double a : act.net_activity) {
    hi = std::max(hi, a);
    lo = std::min(lo, a);
  }
  std::printf("activity range across nets: [%.3f, %.3f]\n\n", lo, hi);

  FlowOptions opt;
  opt.arch.W = 118;
  const FlowResult flow = run_flow(std::move(netlist), opt);

  const auto view = make_view(flow.arch, FpgaVariant::kCmosBaseline);
  const auto timing = analyze_timing(flow.netlist, flow.packing,
                                     flow.placement, flow.graph_view(),
                                     flow.routing, view);

  PowerOptions flat;           // default 0.15 everywhere
  PowerOptions sim = flat;
  sim.net_activity = &act.net_activity;

  const auto p_flat = analyze_power(flow.netlist, flow.packing,
                                    flow.placement, flow.graph_view(), flow.routing,
                                    view, timing, flat);
  const auto p_sim = analyze_power(flow.netlist, flow.packing, flow.placement,
                                   flow.graph_view(), flow.routing, view, timing,
                                   sim);

  TextTable t({"component", "flat activity 0.15", "simulated activities"});
  auto mw = [](double w) { return TextTable::num(w * 1e3, 4) + " mW"; };
  t.add_row({"dynamic: wires", mw(p_flat.dyn_wires), mw(p_sim.dyn_wires)});
  t.add_row({"dynamic: routing buffers", mw(p_flat.dyn_routing_buffers),
             mw(p_sim.dyn_routing_buffers)});
  t.add_row({"dynamic: LUTs", mw(p_flat.dyn_luts), mw(p_sim.dyn_luts)});
  t.add_row({"dynamic: clocking", mw(p_flat.dyn_clocking),
             mw(p_sim.dyn_clocking)});
  t.add_row({"dynamic total", mw(p_flat.dynamic_total()),
             mw(p_sim.dynamic_total())});
  t.add_row({"leakage total (activity-free)", mw(p_flat.leakage_total()),
             mw(p_sim.leakage_total())});
  std::printf("%s", t.to_string().c_str());
  std::printf("\nsimulated activities load each routed net by how often it\n"
              "actually toggles — deep logic toggles less than a flat 0.15\n"
              "assumes, while hub/control nets toggle more.\n");
  return 0;
}
